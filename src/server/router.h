#ifndef PPC_SERVER_ROUTER_H_
#define PPC_SERVER_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "ppc/metrics_registry.h"
#include "server/client.h"
#include "server/hash_ring.h"
#include "server/wire_protocol.h"

namespace ppc {

/// The scale-out front door (DESIGN.md §15): a stateless TCP proxy that
/// speaks the same wire protocol as PlanServer and consistent-hashes
/// PREDICT / PREDICT_BATCH / EXECUTE requests across N shard servers by
/// template name. Because the LSH predictor's state is strictly
/// per-template, routing by template makes each shard authoritative for
/// its arc of the ring: all feedback for a template lands on the shard
/// that predicts it, so sharding changes *where* learning happens but
/// never *what* is learned.
///
/// Request handling:
///
///   * kPredict / kPredictBatch / kExecute — forwarded to the owning
///     shard; the shard's answer (wire status included) is relayed
///     verbatim under the client's request id. Shard failures come back
///     as INTERNAL (connection loss) or TIMEOUT (backend deadline), and
///     the proxy connection survives — one lost shard must not sever
///     every client.
///   * kPing — answered locally (the router's own liveness).
///   * kMetrics — aggregated: the router's own registry plus every
///     shard's METRICS payload, keyed by shard address.
///   * kTopology — add / remove a shard at runtime (the join path of the
///     warm-start protocol). Answers with the new backend count.
///   * kSnapshot / kSnapshotApply — BAD_REQUEST: replication is
///     shard-to-shard, not routed.
///   * kShutdown — ack, then drain the router itself.
///
/// Threading model: one accept thread plus one thread per client
/// connection (router clients are few — load generators and operators —
/// unlike the shard servers, which own the high-fanout epoll loop). Each
/// connection thread keeps its own PpcClient per shard, so backend
/// connections never need cross-thread locking; the shared state is the
/// ring + backend set behind a shared_mutex.
///
/// Shutdown()/drain: async-signal-safe (atomic stores only). The accept
/// and connection loops poll `idle_poll_ms`-bounded reads and exit at
/// the next tick; in-flight forwards finish under the backend deadline.
class PlanRouter {
 public:
  struct Config {
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; see port() after Start().
    uint16_t port = 0;
    /// Initial shard set; extendable at runtime via kTopology.
    std::vector<HashRing::Node> backends;
    int vnodes_per_node = 64;
    size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
    /// Per-forward wall clock, spanning the retry policy below. 0 waits
    /// forever (not recommended — a hung shard then hangs its clients).
    int64_t backend_deadline_ms = 5000;
    /// Applied to shard connects and BUSY answers (server/client.h).
    RetryPolicy backend_retry{/*max_attempts=*/3};
    /// Read-poll granularity: how quickly idle connection threads notice
    /// a drain, and how often they re-check for client bytes.
    int64_t idle_poll_ms = 50;
    /// Bound on writing one response frame back to a client.
    int64_t write_deadline_ms = 10000;
  };

  explicit PlanRouter(Config config);
  ~PlanRouter();

  PlanRouter(const PlanRouter&) = delete;
  PlanRouter& operator=(const PlanRouter&) = delete;

  /// Binds, listens, and spawns the accept thread. Does not contact the
  /// backends — a shard is dialed lazily on its first forwarded request,
  /// so the router can start ahead of its shards.
  Status Start();

  /// Initiates the drain. Async-signal-safe and idempotent.
  void Shutdown();

  /// Blocks until every connection thread has exited.
  void Wait();

  /// Shutdown() + Wait().
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  size_t backend_count() const;
  std::vector<HashRing::Node> backends() const;

  /// The router's own instruments (router.* names).
  MetricsRegistry& metrics() { return metrics_; }

 private:
  /// Per-connection-thread state: the client socket's deframer plus this
  /// thread's private shard connections.
  struct ConnectionState;

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Decodes + dispatches one frame payload; false when the connection
  /// must close (protocol violation or shutdown handoff).
  bool HandleFrame(ConnectionState* state, const std::string& payload);
  wire::Response Forward(ConnectionState* state, const wire::Request& request);
  wire::Response AggregateMetrics(ConnectionState* state);
  wire::Response ApplyTopology(const wire::Request& request);
  Status SendResponse(ConnectionState* state, const wire::Response& response);

  const Config config_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  /// Ring + backend set, shared across connection threads.
  mutable std::shared_mutex topology_mu_;
  HashRing ring_;

  std::thread accept_thread_;
  std::mutex threads_mu_;
  std::vector<std::thread> connection_threads_;

  MetricsRegistry metrics_;
  struct {
    MetricsCounter* connections_accepted = nullptr;
    MetricsCounter* requests_forwarded = nullptr;
    MetricsCounter* requests_local = nullptr;
    MetricsCounter* forward_failures = nullptr;
    MetricsCounter* topology_adds = nullptr;
    MetricsCounter* topology_removes = nullptr;
    MetricsCounter* frames_malformed = nullptr;
    LatencyHistogram* forward_us = nullptr;
  } instruments_;
};

}  // namespace ppc

#endif  // PPC_SERVER_ROUTER_H_
