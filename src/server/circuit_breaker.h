#ifndef PPC_SERVER_CIRCUIT_BREAKER_H_
#define PPC_SERVER_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>

namespace ppc {

/// Per-backend circuit breaker for the router's health model
/// (DESIGN.md §18). Tracks one backend's recent transport outcomes —
/// active PING probes and passive forward failures alike — and gates
/// whether new traffic may be sent to it:
///
///   closed     normal operation; AllowRequest() is true. Consecutive
///              failures (threshold `failure_threshold`) trip it open.
///   open       the backend is presumed dead; AllowRequest() is false so
///              requests fail over to the replica without burning a
///              connect timeout per request. After `open_cooldown_ms` the
///              prober may admit a single trial via TryBeginProbe().
///   half-open  one probe in flight. Success (times
///              `successes_to_close`) closes the breaker; any failure
///              reopens it and restarts the cooldown.
///
/// The router keeps regular traffic out of half-open backends: a shard
/// re-enters rotation only through the prober, which warm-starts it from
/// its replica before recording the closing success — so a rejoining
/// shard is never observable cold (the same invariant the ppc_server
/// --warm-start-from path gives a cold process start).
///
/// Thread-safe: forwards record outcomes from connection threads while
/// the prober drives the open → half-open → closed cycle.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive failures that trip a closed breaker open.
    int failure_threshold = 3;
    /// How long an open breaker rejects traffic before the prober may
    /// admit a half-open trial.
    int64_t open_cooldown_ms = 1000;
    /// Consecutive probe successes required to close from half-open.
    int successes_to_close = 1;
  };

  CircuitBreaker() : CircuitBreaker(Options()) {}
  explicit CircuitBreaker(const Options& options)
      : options_(Sanitize(options)) {}

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  /// True when regular traffic may be sent (closed only — half-open
  /// capacity is reserved for the prober's trial request).
  bool AllowRequest() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_ == State::kClosed;
  }

  /// Prober-side admission: true when a trial request should be issued
  /// now. An open breaker past its cooldown transitions to half-open and
  /// admits the trial; a breaker already half-open re-admits (the
  /// previous trial failed to close it, e.g. successes_to_close > 1).
  bool TryBeginProbe() {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kHalfOpen) return true;
    if (state_ != State::kOpen) return false;
    if (Clock::now() - opened_at_ <
        std::chrono::milliseconds(options_.open_cooldown_ms)) {
      return false;
    }
    state_ = State::kHalfOpen;
    half_open_successes_ = 0;
    return true;
  }

  /// Records a successful round trip. Returns true when this call closed
  /// the breaker (half-open trial completed), so the caller can count
  /// close transitions without racing other recorders.
  bool RecordSuccess() {
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_failures_ = 0;
    if (state_ == State::kHalfOpen &&
        ++half_open_successes_ >= options_.successes_to_close) {
      state_ = State::kClosed;
      return true;
    }
    return false;
  }

  /// Records a failed round trip (timeout, refused dial, connection
  /// loss). Returns true when this call tripped the breaker open.
  bool RecordFailure() {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kHalfOpen) {
      // The trial failed: straight back to open, cooldown restarted.
      state_ = State::kOpen;
      opened_at_ = Clock::now();
      consecutive_failures_ = 0;
      return true;
    }
    if (state_ == State::kOpen) return false;
    if (++consecutive_failures_ >= options_.failure_threshold) {
      state_ = State::kOpen;
      opened_at_ = Clock::now();
      consecutive_failures_ = 0;
      return true;
    }
    return false;
  }

  /// JSON-friendly state names ("closed" / "open" / "half_open"),
  /// reported per backend in the router's aggregated METRICS.
  static const char* StateName(State state) {
    switch (state) {
      case State::kClosed:
        return "closed";
      case State::kOpen:
        return "open";
      case State::kHalfOpen:
        return "half_open";
    }
    return "unknown";
  }

 private:
  using Clock = std::chrono::steady_clock;

  static Options Sanitize(Options options) {
    if (options.failure_threshold < 1) options.failure_threshold = 1;
    if (options.open_cooldown_ms < 0) options.open_cooldown_ms = 0;
    if (options.successes_to_close < 1) options.successes_to_close = 1;
    return options;
  }

  const Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  Clock::time_point opened_at_{};
};

}  // namespace ppc

#endif  // PPC_SERVER_CIRCUIT_BREAKER_H_
