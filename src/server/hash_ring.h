#ifndef PPC_SERVER_HASH_RING_H_
#define PPC_SERVER_HASH_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"

namespace ppc {

/// Consistent-hash ring over backend shards (DESIGN.md §15). Keys (query
/// template names) and backends are placed on a 64-bit ring with FNV-1a;
/// a key is owned by the first backend vnode at or after the key's hash,
/// wrapping at the top. Each backend contributes `vnodes_per_node`
/// virtual nodes so ownership spreads evenly even with two or three
/// shards, and adding or removing one shard moves only the keys in the
/// vnode arcs it gains or loses — every other template keeps its shard,
/// which is what keeps the other shards' caches warm through topology
/// changes.
///
/// Placement is a pure function of (backend address, vnode index), so
/// every router and bench process that sees the same backend set computes
/// the same ownership — no coordination protocol needed. PlacementFor()
/// extends ownership with a replica: the ring-successor backend distinct
/// from the primary, which is where the router keeps a warm standby of
/// the template's predictor state (DESIGN.md §18).
///
/// Not thread-safe; the router guards its ring with the same lock as its
/// backend table.
class HashRing {
 public:
  struct Node {
    std::string host;
    uint16_t port = 0;

    std::string Address() const { return host + ":" + std::to_string(port); }
    bool operator==(const Node& other) const {
      return host == other.host && port == other.port;
    }
    bool operator<(const Node& other) const {
      return host != other.host ? host < other.host : port < other.port;
    }
  };

  explicit HashRing(int vnodes_per_node = 64)
      : vnodes_per_node_(vnodes_per_node < 1 ? 1 : vnodes_per_node) {}

  /// Idempotent: adding a backend that is already on the ring is a no-op
  /// (placement depends only on the address, so re-adding would insert
  /// the exact same vnodes anyway).
  void Add(const Node& node) {
    if (!nodes_.insert(node).second) return;
    for (int v = 0; v < vnodes_per_node_; ++v) {
      ring_.emplace(VnodeHash(node, v), node);
    }
  }

  /// Returns false when the backend was not on the ring.
  bool Remove(const Node& node) {
    if (nodes_.erase(node) == 0) return false;
    for (auto it = ring_.begin(); it != ring_.end();) {
      it = it->second == node ? ring_.erase(it) : std::next(it);
    }
    return true;
  }

  bool Contains(const Node& node) const { return nodes_.count(node) > 0; }
  size_t node_count() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  std::vector<Node> nodes() const {
    return std::vector<Node>(nodes_.begin(), nodes_.end());
  }

  /// The backend owning `key`. FailedPrecondition on an empty ring.
  Result<Node> Owner(const std::string& key) const {
    if (ring_.empty()) {
      return Status::FailedPrecondition("hash ring has no backends");
    }
    auto it = ring_.lower_bound(Mix(Fnv1a64(key)));
    if (it == ring_.end()) it = ring_.begin();  // wrap past the top
    return it->second;
  }

  /// Primary + replica placement for a key (DESIGN.md §18). The primary
  /// is the ring owner (identical to Owner()); the replica is the first
  /// vnode clockwise from the owning vnode that belongs to a *different*
  /// backend — so the replica is always a distinct shard, even when
  /// several of the primary's vnodes happen to sit adjacent on the ring.
  /// With a single backend there is no distinct shard: `has_replica` is
  /// false. Like Owner(), a pure function of the backend set.
  struct Placement {
    Node primary;
    Node replica;
    bool has_replica = false;
  };

  Result<Placement> PlacementFor(const std::string& key) const {
    if (ring_.empty()) {
      return Status::FailedPrecondition("hash ring has no backends");
    }
    auto it = ring_.lower_bound(Mix(Fnv1a64(key)));
    if (it == ring_.end()) it = ring_.begin();  // wrap past the top
    Placement placement;
    placement.primary = it->second;
    // Walk the successor vnodes (wrapping) until a distinct backend shows
    // up; bounded by the ring size, so a one-backend ring terminates with
    // no replica instead of looping.
    auto next = it;
    for (size_t steps = 0; steps + 1 < ring_.size(); ++steps) {
      ++next;
      if (next == ring_.end()) next = ring_.begin();
      if (!(next->second == placement.primary)) {
        placement.replica = next->second;
        placement.has_replica = true;
        break;
      }
    }
    return placement;
  }

 private:
  /// FNV-1a diffuses short, similar strings (template names, a node's
  /// vnode labels) into *adjacent* 64-bit values — its high bits barely
  /// move per character, which would collapse each backend's vnodes into
  /// one tight arc and defeat the ring entirely. The splitmix64
  /// finalizer scatters those neighbors across the full ring. Still a
  /// pure function of the input, so placement stays reproducible
  /// everywhere.
  static uint64_t Mix(uint64_t h) {
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return h;
  }

  static uint64_t VnodeHash(const Node& node, int vnode) {
    return Mix(Fnv1a64(node.Address() + "#" + std::to_string(vnode)));
  }

  /// Non-const so rings stay copy-assignable (the router's health thread
  /// works against a snapshot copy of the ring).
  int vnodes_per_node_;
  std::set<Node> nodes_;
  /// vnode position -> owning backend, sorted by position (the ring).
  std::map<uint64_t, Node> ring_;
};

}  // namespace ppc

#endif  // PPC_SERVER_HASH_RING_H_
