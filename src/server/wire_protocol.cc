#include "server/wire_protocol.h"

#include <cstring>

#include "common/bytes.h"

namespace ppc {
namespace wire {

namespace {

bool ValidRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(MessageType::kPredict) &&
         type <= static_cast<uint8_t>(MessageType::kTopology);
}

bool ValidStatus(uint8_t status) {
  return status <= static_cast<uint8_t>(WireStatus::kTimeout);
}

bool HasPointBody(MessageType type) {
  return type == MessageType::kPredict || type == MessageType::kExecute;
}

/// Wraps a finished payload in the u32 length prefix and appends it.
void AppendFrame(const std::string& payload, std::string* out) {
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char prefix[sizeof(length)];
  std::memcpy(prefix, &length, sizeof(length));
  out->append(prefix, sizeof(length));
  out->append(payload);
}

Result<std::vector<double>> DecodePoint(ByteReader* reader) {
  PPC_ASSIGN_OR_RETURN(uint32_t dims, reader->GetU32());
  if (dims > kMaxPointDimensions) {
    return Status::InvalidArgument("point arity " + std::to_string(dims) +
                                   " exceeds the protocol limit of " +
                                   std::to_string(kMaxPointDimensions));
  }
  std::vector<double> point;
  point.reserve(dims);
  for (uint32_t i = 0; i < dims; ++i) {
    PPC_ASSIGN_OR_RETURN(double v, reader->GetDouble());
    point.push_back(v);
  }
  return point;
}

/// Decodes the kPredictBatch body into the Request's flat row-major
/// storage. Both the point count and the arity are validated against the
/// protocol limits before any allocation is sized from them.
Status DecodeBatchBody(ByteReader* reader, Request* request) {
  PPC_ASSIGN_OR_RETURN(uint32_t count, reader->GetU32());
  if (count == 0) {
    return Status::InvalidArgument("PREDICT_BATCH with zero points");
  }
  if (count > kMaxBatchPoints) {
    return Status::InvalidArgument("batch of " + std::to_string(count) +
                                   " points exceeds the protocol limit of " +
                                   std::to_string(kMaxBatchPoints));
  }
  PPC_ASSIGN_OR_RETURN(uint32_t dims, reader->GetU32());
  if (dims == 0) {
    return Status::InvalidArgument("PREDICT_BATCH with zero-arity points");
  }
  if (dims > kMaxPointDimensions) {
    return Status::InvalidArgument("point arity " + std::to_string(dims) +
                                   " exceeds the protocol limit of " +
                                   std::to_string(kMaxPointDimensions));
  }
  request->batch_dims = dims;
  request->batch_points.resize(static_cast<size_t>(count) * dims);
  return reader->GetDoubles(request->batch_points.data(),
                            request->batch_points.size());
}

Status RequireAtEnd(const ByteReader& reader) {
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after message body");
  }
  return Status::OK();
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kInvalid:
      return "INVALID";
    case MessageType::kPredict:
      return "PREDICT";
    case MessageType::kExecute:
      return "EXECUTE";
    case MessageType::kMetrics:
      return "METRICS";
    case MessageType::kPing:
      return "PING";
    case MessageType::kShutdown:
      return "SHUTDOWN";
    case MessageType::kPredictBatch:
      return "PREDICT_BATCH";
    case MessageType::kSnapshot:
      return "SNAPSHOT";
    case MessageType::kSnapshotApply:
      return "SNAPSHOT_APPLY";
    case MessageType::kTopology:
      return "TOPOLOGY";
  }
  return "UNKNOWN";
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "OK";
    case WireStatus::kBusy:
      return "BUSY";
    case WireStatus::kBadRequest:
      return "BAD_REQUEST";
    case WireStatus::kNotFound:
      return "NOT_FOUND";
    case WireStatus::kInternal:
      return "INTERNAL";
    case WireStatus::kShuttingDown:
      return "SHUTTING_DOWN";
    case WireStatus::kTimeout:
      return "TIMEOUT";
  }
  return "UNKNOWN";
}

void EncodeRequest(const Request& request, std::string* out) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(request.type));
  writer.PutU64(request.id);
  if (HasPointBody(request.type)) {
    writer.PutString(request.template_name);
    writer.PutU32(static_cast<uint32_t>(request.point.size()));
    for (double v : request.point) writer.PutDouble(v);
  } else if (request.type == MessageType::kPredictBatch) {
    writer.PutString(request.template_name);
    writer.PutU32(request.batch_count());
    writer.PutU32(request.batch_dims);
    writer.PutDoubles(request.batch_points.data(),
                      request.batch_points.size());
  } else if (request.type == MessageType::kSnapshotApply) {
    writer.PutString(request.snapshot_blob);
  } else if (request.type == MessageType::kTopology) {
    writer.PutU8(static_cast<uint8_t>(request.topology_op));
    writer.PutString(request.topology_host);
    writer.PutU32(request.topology_port);
  }
  AppendFrame(writer.buffer(), out);
}

void EncodeResponsePayload(const Response& response, std::string* out) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(response.type));
  writer.PutU64(response.id);
  writer.PutU8(static_cast<uint8_t>(response.status));
  if (!response.ok()) {
    writer.PutString(response.error);
  } else {
    switch (response.type) {
      case MessageType::kPredict:
        writer.PutU64(response.predict.plan);
        writer.PutDouble(response.predict.confidence);
        writer.PutU8(response.predict.cache_hit ? 1 : 0);
        break;
      case MessageType::kExecute: {
        const Response::Execute& e = response.execute;
        writer.PutU64(e.executed_plan);
        writer.PutU64(e.optimal_plan);
        uint8_t flags = 0;
        if (e.used_prediction) flags |= 1u << 0;
        if (e.cache_hit) flags |= 1u << 1;
        if (e.optimizer_invoked) flags |= 1u << 2;
        if (e.prediction_evicted) flags |= 1u << 3;
        if (e.negative_feedback_triggered) flags |= 1u << 4;
        if (e.failed_over) flags |= 1u << 5;
        writer.PutU8(flags);
        writer.PutDouble(e.execution_cost);
        writer.PutDouble(e.optimize_micros);
        writer.PutDouble(e.predict_micros);
        writer.PutDouble(e.execute_micros);
        break;
      }
      case MessageType::kMetrics:
        writer.PutString(response.metrics_json);
        break;
      case MessageType::kPredictBatch:
        writer.PutU32(static_cast<uint32_t>(response.batch.size()));
        for (const Response::Predict& p : response.batch) {
          writer.PutU64(p.plan);
          writer.PutDouble(p.confidence);
          writer.PutU8(p.cache_hit ? 1 : 0);
        }
        break;
      case MessageType::kSnapshot:
        writer.PutString(response.snapshot_blob);
        break;
      case MessageType::kSnapshotApply:
        writer.PutU32(response.snapshot_applied);
        break;
      case MessageType::kTopology:
        writer.PutU32(response.backend_count);
        break;
      case MessageType::kPing:
      case MessageType::kShutdown:
      case MessageType::kInvalid:
        break;
    }
  }
  if (out->empty()) {
    *out = writer.Take();
  } else {
    out->append(writer.buffer());
  }
}

void EncodeResponse(const Response& response, std::string* out) {
  std::string payload;
  EncodeResponsePayload(response, &payload);
  AppendFrame(payload, out);
}

Result<Request> DecodeRequest(const std::string& payload) {
  ByteReader reader(payload);
  PPC_ASSIGN_OR_RETURN(uint8_t type_byte, reader.GetU8());
  if (!ValidRequestType(type_byte)) {
    return Status::InvalidArgument("unknown request type " +
                                   std::to_string(type_byte));
  }
  Request request;
  request.type = static_cast<MessageType>(type_byte);
  PPC_ASSIGN_OR_RETURN(request.id, reader.GetU64());
  if (HasPointBody(request.type)) {
    PPC_ASSIGN_OR_RETURN(request.template_name, reader.GetString());
    PPC_ASSIGN_OR_RETURN(request.point, DecodePoint(&reader));
  } else if (request.type == MessageType::kPredictBatch) {
    PPC_ASSIGN_OR_RETURN(request.template_name, reader.GetString());
    PPC_RETURN_NOT_OK(DecodeBatchBody(&reader, &request));
  } else if (request.type == MessageType::kSnapshotApply) {
    PPC_ASSIGN_OR_RETURN(request.snapshot_blob, reader.GetString());
  } else if (request.type == MessageType::kTopology) {
    PPC_ASSIGN_OR_RETURN(uint8_t op_byte, reader.GetU8());
    if (op_byte != static_cast<uint8_t>(TopologyOp::kAdd) &&
        op_byte != static_cast<uint8_t>(TopologyOp::kRemove)) {
      return Status::InvalidArgument("unknown topology operation " +
                                     std::to_string(op_byte));
    }
    request.topology_op = static_cast<TopologyOp>(op_byte);
    PPC_ASSIGN_OR_RETURN(request.topology_host, reader.GetString());
    PPC_ASSIGN_OR_RETURN(uint32_t port, reader.GetU32());
    if (port == 0 || port > 65535) {
      return Status::InvalidArgument("topology port " + std::to_string(port) +
                                     " outside (0, 65535]");
    }
    request.topology_port = static_cast<uint16_t>(port);
  }
  PPC_RETURN_NOT_OK(RequireAtEnd(reader));
  return request;
}

Result<Response> DecodeResponse(const std::string& payload) {
  ByteReader reader(payload);
  PPC_ASSIGN_OR_RETURN(uint8_t type_byte, reader.GetU8());
  if (type_byte > static_cast<uint8_t>(MessageType::kTopology)) {
    return Status::InvalidArgument("unknown response type " +
                                   std::to_string(type_byte));
  }
  Response response;
  response.type = static_cast<MessageType>(type_byte);
  PPC_ASSIGN_OR_RETURN(response.id, reader.GetU64());
  PPC_ASSIGN_OR_RETURN(uint8_t status_byte, reader.GetU8());
  if (!ValidStatus(status_byte)) {
    return Status::InvalidArgument("unknown response status " +
                                   std::to_string(status_byte));
  }
  response.status = static_cast<WireStatus>(status_byte);
  if (!response.ok()) {
    PPC_ASSIGN_OR_RETURN(response.error, reader.GetString());
  } else {
    switch (response.type) {
      case MessageType::kPredict: {
        PPC_ASSIGN_OR_RETURN(response.predict.plan, reader.GetU64());
        PPC_ASSIGN_OR_RETURN(response.predict.confidence, reader.GetDouble());
        PPC_ASSIGN_OR_RETURN(uint8_t hit, reader.GetU8());
        response.predict.cache_hit = hit != 0;
        break;
      }
      case MessageType::kExecute: {
        Response::Execute& e = response.execute;
        PPC_ASSIGN_OR_RETURN(e.executed_plan, reader.GetU64());
        PPC_ASSIGN_OR_RETURN(e.optimal_plan, reader.GetU64());
        PPC_ASSIGN_OR_RETURN(uint8_t flags, reader.GetU8());
        e.used_prediction = (flags & (1u << 0)) != 0;
        e.cache_hit = (flags & (1u << 1)) != 0;
        e.optimizer_invoked = (flags & (1u << 2)) != 0;
        e.prediction_evicted = (flags & (1u << 3)) != 0;
        e.negative_feedback_triggered = (flags & (1u << 4)) != 0;
        e.failed_over = (flags & (1u << 5)) != 0;
        PPC_ASSIGN_OR_RETURN(e.execution_cost, reader.GetDouble());
        PPC_ASSIGN_OR_RETURN(e.optimize_micros, reader.GetDouble());
        PPC_ASSIGN_OR_RETURN(e.predict_micros, reader.GetDouble());
        PPC_ASSIGN_OR_RETURN(e.execute_micros, reader.GetDouble());
        break;
      }
      case MessageType::kMetrics: {
        PPC_ASSIGN_OR_RETURN(response.metrics_json, reader.GetString());
        break;
      }
      case MessageType::kPredictBatch: {
        PPC_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
        if (count > kMaxBatchPoints) {
          return Status::InvalidArgument(
              "batch of " + std::to_string(count) +
              " answers exceeds the protocol limit of " +
              std::to_string(kMaxBatchPoints));
        }
        response.batch.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          Response::Predict p;
          PPC_ASSIGN_OR_RETURN(p.plan, reader.GetU64());
          PPC_ASSIGN_OR_RETURN(p.confidence, reader.GetDouble());
          PPC_ASSIGN_OR_RETURN(uint8_t hit, reader.GetU8());
          p.cache_hit = hit != 0;
          response.batch.push_back(p);
        }
        break;
      }
      case MessageType::kSnapshot: {
        PPC_ASSIGN_OR_RETURN(response.snapshot_blob, reader.GetString());
        break;
      }
      case MessageType::kSnapshotApply: {
        PPC_ASSIGN_OR_RETURN(response.snapshot_applied, reader.GetU32());
        break;
      }
      case MessageType::kTopology: {
        PPC_ASSIGN_OR_RETURN(response.backend_count, reader.GetU32());
        break;
      }
      case MessageType::kPing:
      case MessageType::kShutdown:
      case MessageType::kInvalid:
        break;
    }
  }
  PPC_RETURN_NOT_OK(RequireAtEnd(reader));
  return response;
}

void FrameBuffer::Append(const char* data, size_t size) {
  buffer_.append(data, size);
}

Result<bool> FrameBuffer::Next(std::string* payload) {
  if (poisoned_) {
    return Status::InvalidArgument("frame stream previously violated "
                                   "framing; connection must be dropped");
  }
  // Compact lazily so a long-lived connection does not grow its buffer
  // without bound on the consumed prefix.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  if (buffer_.size() - consumed_ < sizeof(uint32_t)) return false;
  uint32_t length = 0;
  std::memcpy(&length, buffer_.data() + consumed_, sizeof(length));
  if (length == 0 || length > max_frame_bytes_) {
    poisoned_ = true;
    return Status::InvalidArgument(
        "declared frame length " + std::to_string(length) +
        " outside (0, " + std::to_string(max_frame_bytes_) + "]");
  }
  if (buffer_.size() - consumed_ < sizeof(uint32_t) + length) return false;
  payload->assign(buffer_, consumed_ + sizeof(uint32_t), length);
  consumed_ += sizeof(uint32_t) + length;
  return true;
}

Status ToStatus(WireStatus status, const std::string& message) {
  switch (status) {
    case WireStatus::kOk:
      return Status::OK();
    case WireStatus::kBusy:
      return Status::ResourceExhausted(message.empty() ? "server busy"
                                                       : message);
    case WireStatus::kBadRequest:
      return Status::InvalidArgument(message);
    case WireStatus::kNotFound:
      return Status::NotFound(message);
    case WireStatus::kInternal:
      return Status::Internal(message);
    case WireStatus::kShuttingDown:
      return Status::FailedPrecondition(
          message.empty() ? "server shutting down" : message);
    case WireStatus::kTimeout:
      return Status::DeadlineExceeded(message.empty() ? "server-side timeout"
                                                      : message);
  }
  return Status::Internal("unknown wire status");
}

}  // namespace wire
}  // namespace ppc
