#ifndef PPC_SERVER_FAILPOINTS_H_
#define PPC_SERVER_FAILPOINTS_H_

#include <atomic>
#include <cstdint>

namespace ppc {
namespace failpoints {

/// Deterministic fault-injection registry for the serving stack
/// (DESIGN.md §14). Compiled in unconditionally: every instrumented site
/// costs one relaxed atomic load plus a predictable branch while its
/// failpoint is disarmed, so production builds pay effectively nothing.
/// Tests arm a site with a Config describing *what* to inject (short
/// reads/writes, EAGAIN/EINTR storms, hard errors, frame truncation,
/// stalls) and *when* (every Nth hit, with a seeded probability, up to a
/// budget), then run real traffic against the fault.
///
/// Thread safety: Arm/Disarm may race freely with Hit() from the IO and
/// worker threads — the fast path reads an atomic site mask, and the slow
/// path takes a registry mutex. Counters are atomics; everything is
/// TSan-clean (tests/test_failpoints.cc hammers exactly this).

/// Instrumented sites. One bit each in the armed mask, so adding a site
/// means extending this enum (keep kSiteCount last).
enum class Site : uint32_t {
  kRecv = 0,   ///< net_util receive paths (client + IO-thread reads).
  kSend,       ///< net_util WriteAll / SendAll.
  kAccept,     ///< PlanServer::AcceptConnections.
  kEnqueue,    ///< IO-thread admission (forces the BUSY path).
  kDispatch,   ///< worker-side dispatch (artificial worker stalls).
  kRetune,     ///< background refit worker, hit before the rebuild
               ///< (kStallMs stretches the handoff window open so tests
               ///< can hammer serving mid-refit; kError aborts the refit,
               ///< which must leave the serving generation untouched).
  kSiteCount,
};

const char* SiteName(Site site);

/// What an armed failpoint injects when it fires.
enum class Kind : uint8_t {
  kNone = 0,
  kShortIo,    ///< clamp one read/write to `arg` bytes (min 1).
  kEagain,     ///< report EAGAIN without touching the socket.
  kEintr,      ///< report EINTR (the site retries, i.e. burns a loop).
  kError,      ///< hard failure (as if the peer reset the connection).
  kTruncate,   ///< send side: write `arg` bytes of the frame, then fail.
  kStallMs,    ///< sleep `arg` milliseconds at the site.
};

/// Arming descriptor. `every` / `probability_permille` / `budget` compose:
/// an evaluation fires only when it is the Nth hit since arming (every),
/// the seeded coin lands (probability), and the budget is not spent.
struct Config {
  Kind kind = Kind::kNone;
  /// Bytes for kShortIo / kTruncate, milliseconds for kStallMs.
  uint32_t arg = 1;
  /// Fire on every Nth eligible hit (1 = every hit, 3 = hits 3, 6, ...).
  uint32_t every = 1;
  /// Chance per eligible hit in [0, 1000]; draws come from a private
  /// xoshiro stream seeded with `seed`, so runs are reproducible.
  uint32_t probability_permille = 1000;
  uint64_t seed = 1;
  /// Fire at most this many times; < 0 means unlimited. Once spent the
  /// site behaves as disarmed (without clearing the mask bit).
  int64_t budget = -1;
};

/// The action an instrumented site must apply. kNone means proceed.
struct Action {
  Kind kind = Kind::kNone;
  uint32_t arg = 0;
};

void Arm(Site site, const Config& config);
void Disarm(Site site);
void DisarmAll();

/// Evaluations of an armed site (disarmed hits are not counted — the fast
/// path never reaches the registry).
uint64_t HitCount(Site site);
/// Times the site actually injected a fault.
uint64_t FiredCount(Site site);

namespace detail {
extern std::atomic<uint32_t> g_armed_mask;
Action EvaluateSlow(Site site);
}  // namespace detail

/// The per-site probe. Call at the top of the instrumented operation;
/// disarmed cost is the inlined mask check only.
inline Action Hit(Site site) {
  if ((detail::g_armed_mask.load(std::memory_order_relaxed) &
       (1u << static_cast<uint32_t>(site))) == 0) {
    return Action{};
  }
  return detail::EvaluateSlow(site);
}

/// Applies a kStallMs action (no-op otherwise), so sites don't each need
/// their own sleep plumbing.
void MaybeStall(const Action& action);

}  // namespace failpoints
}  // namespace ppc

#endif  // PPC_SERVER_FAILPOINTS_H_
