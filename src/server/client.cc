#include "server/client.h"

#include <unistd.h>

#include <utility>

#include "server/net_util.h"

namespace ppc {

Status PpcClient::Connect(const std::string& host, uint16_t port) {
  if (connected()) return Status::FailedPrecondition("already connected");
  PPC_ASSIGN_OR_RETURN(fd_, net::Connect(host, port));
  return Status::OK();
}

void PpcClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  parked_.clear();
}

Result<uint64_t> PpcClient::SendRequest(wire::MessageType type,
                                        const std::string& template_name,
                                        const std::vector<double>& point) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  wire::Request request;
  request.type = type;
  request.id = next_id_++;
  request.template_name = template_name;
  request.point = point;
  std::string frame;
  wire::EncodeRequest(request, &frame);
  if (!net::SendAll(fd_, frame.data(), frame.size())) {
    Close();
    return Status::Internal("send failed; connection closed");
  }
  return request.id;
}

Result<uint64_t> PpcClient::SendPredict(const std::string& template_name,
                                        const std::vector<double>& point) {
  return SendRequest(wire::MessageType::kPredict, template_name, point);
}

Result<uint64_t> PpcClient::SendPredictBatch(
    const std::string& template_name, const std::vector<double>& points,
    uint32_t dims) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  if (dims == 0 || points.empty() || points.size() % dims != 0) {
    return Status::InvalidArgument(
        "batch points must be a non-empty multiple of dims doubles");
  }
  wire::Request request;
  request.type = wire::MessageType::kPredictBatch;
  request.id = next_id_++;
  request.template_name = template_name;
  request.batch_dims = dims;
  request.batch_points = points;
  std::string frame;
  wire::EncodeRequest(request, &frame);
  if (!net::SendAll(fd_, frame.data(), frame.size())) {
    Close();
    return Status::Internal("send failed; connection closed");
  }
  return request.id;
}

Result<uint64_t> PpcClient::SendExecute(const std::string& template_name,
                                        const std::vector<double>& point) {
  return SendRequest(wire::MessageType::kExecute, template_name, point);
}

Result<uint64_t> PpcClient::SendPing() {
  return SendRequest(wire::MessageType::kPing, {}, {});
}

Result<uint64_t> PpcClient::SendShutdown() {
  return SendRequest(wire::MessageType::kShutdown, {}, {});
}

Result<wire::Response> PpcClient::Wait(uint64_t id) {
  auto parked = parked_.find(id);
  if (parked != parked_.end()) {
    wire::Response response = std::move(parked->second);
    parked_.erase(parked);
    return response;
  }
  return ReadUntil(id);
}

Result<wire::Response> PpcClient::ReadUntil(uint64_t id) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  char buffer[16 * 1024];
  while (true) {
    // Deframe everything already buffered before touching the socket.
    std::string payload;
    while (true) {
      PPC_ASSIGN_OR_RETURN(bool have, frames_.Next(&payload));
      if (!have) break;
      PPC_ASSIGN_OR_RETURN(wire::Response response,
                           wire::DecodeResponse(payload));
      if (response.id == id) return response;
      parked_[response.id] = std::move(response);
    }
    PPC_ASSIGN_OR_RETURN(size_t received,
                         net::RecvSome(fd_, buffer, sizeof(buffer)));
    if (received == 0) {
      Close();
      return Status::Internal(
          "connection closed by server while awaiting response " +
          std::to_string(id));
    }
    frames_.Append(buffer, received);
  }
}

Result<PpcClient::PredictResult> PpcClient::Predict(
    const std::string& template_name, const std::vector<double>& point) {
  PPC_ASSIGN_OR_RETURN(uint64_t id, SendPredict(template_name, point));
  PPC_ASSIGN_OR_RETURN(wire::Response response, Wait(id));
  PPC_RETURN_NOT_OK(wire::ToStatus(response.status, response.error));
  return PredictResult{response.predict.plan, response.predict.confidence,
                       response.predict.cache_hit};
}

Result<std::vector<PpcClient::PredictResult>> PpcClient::PredictBatch(
    const std::string& template_name, const std::vector<double>& points,
    uint32_t dims) {
  PPC_ASSIGN_OR_RETURN(uint64_t id,
                       SendPredictBatch(template_name, points, dims));
  PPC_ASSIGN_OR_RETURN(wire::Response response, Wait(id));
  PPC_RETURN_NOT_OK(wire::ToStatus(response.status, response.error));
  std::vector<PredictResult> results;
  results.reserve(response.batch.size());
  for (const wire::Response::Predict& p : response.batch) {
    results.push_back(PredictResult{p.plan, p.confidence, p.cache_hit});
  }
  return results;
}

Result<wire::Response::Execute> PpcClient::Execute(
    const std::string& template_name, const std::vector<double>& point) {
  PPC_ASSIGN_OR_RETURN(uint64_t id, SendExecute(template_name, point));
  PPC_ASSIGN_OR_RETURN(wire::Response response, Wait(id));
  PPC_RETURN_NOT_OK(wire::ToStatus(response.status, response.error));
  return response.execute;
}

Result<std::string> PpcClient::Metrics() {
  PPC_ASSIGN_OR_RETURN(uint64_t id,
                       SendRequest(wire::MessageType::kMetrics, {}, {}));
  PPC_ASSIGN_OR_RETURN(wire::Response response, Wait(id));
  PPC_RETURN_NOT_OK(wire::ToStatus(response.status, response.error));
  return std::move(response.metrics_json);
}

Status PpcClient::Ping() {
  PPC_ASSIGN_OR_RETURN(uint64_t id, SendPing());
  PPC_ASSIGN_OR_RETURN(wire::Response response, Wait(id));
  return wire::ToStatus(response.status, response.error);
}

Status PpcClient::Shutdown() {
  PPC_ASSIGN_OR_RETURN(uint64_t id, SendShutdown());
  PPC_ASSIGN_OR_RETURN(wire::Response response, Wait(id));
  return wire::ToStatus(response.status, response.error);
}

}  // namespace ppc
