#include "server/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

namespace ppc {

PpcClient::PpcClient(const Options& options)
    : options_(options), backoff_rng_(options.retry.seed) {}

Status PpcClient::Connect(const std::string& host, uint16_t port) {
  if (connected()) return Status::FailedPrecondition("already connected");
  host_ = host;
  port_ = port;
  const net::Deadline deadline = CallDeadline();
  const int attempts = std::max(1, options_.retry.max_attempts);
  Status last = Status::Internal("connect never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.connect_retries;
      if (!BackoffBeforeRetry(attempt - 1, deadline)) break;
    }
    // The call deadline spans the handshake too: an unreachable peer
    // surfaces as DeadlineExceeded here instead of blocking in connect(2)
    // for the kernel's SYN-retry schedule.
    Result<int> fd = net::Connect(host, port, deadline);
    if (fd.ok()) {
      fd_ = fd.value();
      ++connection_generation_;
      return Status::OK();
    }
    last = fd.status();
  }
  return last;
}

void PpcClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  // Partial frames died with the stream, but parked responses were
  // received whole and decoded — they still answer their Wait() calls
  // after the loss.
  frames_.Reset();
}

bool PpcClient::BackoffBeforeRetry(int attempt,
                                   const net::Deadline& deadline) {
  const RetryPolicy& retry = options_.retry;
  double backoff_ms = static_cast<double>(retry.initial_backoff_ms);
  for (int i = 0; i < attempt; ++i) backoff_ms *= retry.multiplier;
  backoff_ms = std::min(backoff_ms, static_cast<double>(retry.max_backoff_ms));
  const double jitter = std::clamp(retry.jitter, 0.0, 1.0);
  backoff_ms *= 1.0 - jitter + 2.0 * jitter * backoff_rng_.Uniform();
  const int64_t sleep_ms = std::max<int64_t>(0, std::llround(backoff_ms));
  // A backoff the deadline cannot absorb means the retry would wake up
  // already expired — report exhaustion instead of sleeping pointlessly.
  if (!deadline.infinite() && deadline.PollTimeoutMs() < sleep_ms) {
    return false;
  }
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return true;
}

Status PpcClient::SendEncoded(const std::string& frame,
                              const net::Deadline& deadline) {
  Status status = net::WriteAll(fd_, frame.data(), frame.size(), deadline);
  if (!status.ok()) {
    // Whatever was mid-frame is unrecoverable; the stream is dead either
    // way (deadline, peer loss, or hard error).
    Close();
    if (status.code() == StatusCode::kDeadlineExceeded) {
      ++stats_.deadlines_exceeded;
    }
  }
  return status;
}

Result<wire::Response> PpcClient::RoundTrip(wire::Request request) {
  const net::Deadline deadline = CallDeadline();
  const int attempts = std::max(1, options_.retry.max_attempts);
  Status last = Status::Internal("round trip never attempted");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && !BackoffBeforeRetry(attempt - 1, deadline)) break;
    if (!connected()) {
      // Only attempt to re-establish a connection we made ourselves;
      // without a remembered endpoint this is a plain usage error.
      if (host_.empty()) return Status::FailedPrecondition("not connected");
      Result<int> fd = net::Connect(host_, port_, deadline);
      if (!fd.ok()) {
        // Transient connect failures are the second retryable class
        // (besides BUSY): nothing was sent, so retrying is always safe.
        last = fd.status();
        ++stats_.connect_retries;
        continue;
      }
      fd_ = fd.value();
      ++connection_generation_;
      ++stats_.reconnects;
    }
    request.id = next_id_++;
    std::string frame;
    wire::EncodeRequest(request, &frame);
    Status sent = SendEncoded(frame, deadline);
    // A send failure is NOT retried automatically: part of the frame may
    // already be on the wire, and re-sending an EXECUTE would run the
    // query twice. The caller decides (the request id was never answered).
    if (!sent.ok()) return sent;
    Result<wire::Response> response = ReadUntil(request.id, deadline);
    if (!response.ok()) return response.status();
    if (response.value().status == wire::WireStatus::kBusy &&
        attempt + 1 < attempts) {
      // BUSY is the server's explicit "not admitted" — safe to retry.
      ++stats_.busy_retries;
      last = wire::ToStatus(response.value().status,
                            response.value().error);
      continue;
    }
    return response;
  }
  return last;
}

Result<uint64_t> PpcClient::SendRequest(wire::MessageType type,
                                        const std::string& template_name,
                                        const std::vector<double>& point) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  wire::Request request;
  request.type = type;
  request.id = next_id_++;
  request.template_name = template_name;
  request.point = point;
  std::string frame;
  wire::EncodeRequest(request, &frame);
  PPC_RETURN_NOT_OK(SendEncoded(frame, CallDeadline()));
  in_flight_[request.id] = connection_generation_;
  return request.id;
}

Result<uint64_t> PpcClient::SendPredict(const std::string& template_name,
                                        const std::vector<double>& point) {
  return SendRequest(wire::MessageType::kPredict, template_name, point);
}

Result<uint64_t> PpcClient::SendPredictBatch(
    const std::string& template_name, const std::vector<double>& points,
    uint32_t dims) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  if (dims == 0 || points.empty() || points.size() % dims != 0) {
    return Status::InvalidArgument(
        "batch points must be a non-empty multiple of dims doubles");
  }
  wire::Request request;
  request.type = wire::MessageType::kPredictBatch;
  request.id = next_id_++;
  request.template_name = template_name;
  request.batch_dims = dims;
  request.batch_points = points;
  std::string frame;
  wire::EncodeRequest(request, &frame);
  PPC_RETURN_NOT_OK(SendEncoded(frame, CallDeadline()));
  in_flight_[request.id] = connection_generation_;
  return request.id;
}

Result<uint64_t> PpcClient::SendExecute(const std::string& template_name,
                                        const std::vector<double>& point) {
  return SendRequest(wire::MessageType::kExecute, template_name, point);
}

Result<uint64_t> PpcClient::SendPing() {
  return SendRequest(wire::MessageType::kPing, {}, {});
}

Result<uint64_t> PpcClient::SendShutdown() {
  return SendRequest(wire::MessageType::kShutdown, {}, {});
}

Result<wire::Response> PpcClient::Wait(uint64_t id) {
  auto parked = parked_.find(id);
  if (parked != parked_.end()) {
    wire::Response response = std::move(parked->second);
    parked_.erase(parked);
    return response;
  }
  auto sent = in_flight_.find(id);
  if (sent == in_flight_.end()) {
    return Status::FailedPrecondition(
        "request " + std::to_string(id) +
        " is not in flight (never sent, or already collected)");
  }
  // A response can only ever arrive on the stream its request was sent
  // on. If that connection is gone — whether or not a synchronous call
  // has since reconnected and bumped the generation — reading would at
  // best block until the deadline and at worst (infinite deadline, new
  // connection) hang forever on bytes that can never match.
  if (sent->second != connection_generation_ || !connected()) {
    in_flight_.erase(sent);
    return Status::Unavailable(
        "connection lost after request " + std::to_string(id) +
        " was sent; its response can never arrive");
  }
  Result<wire::Response> response = ReadUntil(id, CallDeadline());
  in_flight_.erase(id);
  return response;
}

Result<wire::Response> PpcClient::ReadUntil(uint64_t id,
                                            const net::Deadline& deadline) {
  if (!connected()) return Status::FailedPrecondition("not connected");
  char buffer[16 * 1024];
  while (true) {
    // Deframe everything already buffered before touching the socket.
    std::string payload;
    while (true) {
      Result<bool> have = frames_.Next(&payload);
      if (!have.ok()) {
        Close();
        return have.status();
      }
      if (!have.value()) break;
      Result<wire::Response> decoded = wire::DecodeResponse(payload);
      if (!decoded.ok()) {
        Close();
        return decoded.status();
      }
      if (decoded.value().id == id) return std::move(decoded.value());
      // Fully received: from here the parked copy answers its Wait(),
      // so the in-flight record (tied to the connection) is done.
      in_flight_.erase(decoded.value().id);
      parked_[decoded.value().id] = std::move(decoded.value());
    }
    Result<size_t> received =
        net::RecvSome(fd_, buffer, sizeof(buffer), deadline);
    if (!received.ok()) {
      // After a timeout the stream can no longer be matched to request
      // ids (the response may arrive later, half-read) — close it.
      Close();
      if (received.status().code() == StatusCode::kDeadlineExceeded) {
        ++stats_.deadlines_exceeded;
        return Status::DeadlineExceeded(
            "deadline expired while awaiting response " + std::to_string(id));
      }
      return received.status();
    }
    if (received.value() == 0) {
      Close();
      return Status::Unavailable(
          "connection closed by server while awaiting response " +
          std::to_string(id));
    }
    frames_.Append(buffer, received.value());
  }
}

Result<PpcClient::PredictResult> PpcClient::Predict(
    const std::string& template_name, const std::vector<double>& point) {
  wire::Request request;
  request.type = wire::MessageType::kPredict;
  request.template_name = template_name;
  request.point = point;
  PPC_ASSIGN_OR_RETURN(wire::Response response, RoundTrip(std::move(request)));
  PPC_RETURN_NOT_OK(wire::ToStatus(response.status, response.error));
  return PredictResult{response.predict.plan, response.predict.confidence,
                       response.predict.cache_hit};
}

Result<std::vector<PpcClient::PredictResult>> PpcClient::PredictBatch(
    const std::string& template_name, const std::vector<double>& points,
    uint32_t dims) {
  if (dims == 0 || points.empty() || points.size() % dims != 0) {
    return Status::InvalidArgument(
        "batch points must be a non-empty multiple of dims doubles");
  }
  wire::Request request;
  request.type = wire::MessageType::kPredictBatch;
  request.template_name = template_name;
  request.batch_dims = dims;
  request.batch_points = points;
  PPC_ASSIGN_OR_RETURN(wire::Response response, RoundTrip(std::move(request)));
  PPC_RETURN_NOT_OK(wire::ToStatus(response.status, response.error));
  std::vector<PredictResult> results;
  results.reserve(response.batch.size());
  for (const wire::Response::Predict& p : response.batch) {
    results.push_back(PredictResult{p.plan, p.confidence, p.cache_hit});
  }
  return results;
}

Result<wire::Response::Execute> PpcClient::Execute(
    const std::string& template_name, const std::vector<double>& point) {
  wire::Request request;
  request.type = wire::MessageType::kExecute;
  request.template_name = template_name;
  request.point = point;
  PPC_ASSIGN_OR_RETURN(wire::Response response, RoundTrip(std::move(request)));
  PPC_RETURN_NOT_OK(wire::ToStatus(response.status, response.error));
  return response.execute;
}

Result<std::string> PpcClient::Metrics() {
  wire::Request request;
  request.type = wire::MessageType::kMetrics;
  PPC_ASSIGN_OR_RETURN(wire::Response response, RoundTrip(std::move(request)));
  PPC_RETURN_NOT_OK(wire::ToStatus(response.status, response.error));
  return std::move(response.metrics_json);
}

Status PpcClient::Ping() {
  wire::Request request;
  request.type = wire::MessageType::kPing;
  PPC_ASSIGN_OR_RETURN(wire::Response response, RoundTrip(std::move(request)));
  return wire::ToStatus(response.status, response.error);
}

Status PpcClient::Shutdown() {
  wire::Request request;
  request.type = wire::MessageType::kShutdown;
  PPC_ASSIGN_OR_RETURN(wire::Response response, RoundTrip(std::move(request)));
  return wire::ToStatus(response.status, response.error);
}

Result<std::string> PpcClient::FetchSnapshot() {
  wire::Request request;
  request.type = wire::MessageType::kSnapshot;
  PPC_ASSIGN_OR_RETURN(wire::Response response, RoundTrip(std::move(request)));
  PPC_RETURN_NOT_OK(wire::ToStatus(response.status, response.error));
  return std::move(response.snapshot_blob);
}

Result<uint32_t> PpcClient::ApplySnapshot(const std::string& blob) {
  wire::Request request;
  request.type = wire::MessageType::kSnapshotApply;
  request.snapshot_blob = blob;
  PPC_ASSIGN_OR_RETURN(wire::Response response, RoundTrip(std::move(request)));
  PPC_RETURN_NOT_OK(wire::ToStatus(response.status, response.error));
  return response.snapshot_applied;
}

Result<uint32_t> PpcClient::Topology(wire::TopologyOp op,
                                     const std::string& host, uint16_t port) {
  wire::Request request;
  request.type = wire::MessageType::kTopology;
  request.topology_op = op;
  request.topology_host = host;
  request.topology_port = port;
  PPC_ASSIGN_OR_RETURN(wire::Response response, RoundTrip(std::move(request)));
  PPC_RETURN_NOT_OK(wire::ToStatus(response.status, response.error));
  return response.backend_count;
}

}  // namespace ppc
