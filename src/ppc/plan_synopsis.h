#ifndef PPC_PPC_PLAN_SYNOPSIS_H_
#define PPC_PPC_PLAN_SYNOPSIS_H_

#include <cstdint>
#include <vector>

#include "lsh/zorder.h"
#include "stats/streaming_histogram.h"

namespace ppc {

/// The histogram synopsis of one query plan's sample distribution: one
/// bounded-bucket database histogram per randomized transform, keyed by
/// Z-order-linearized position (paper Sec. IV-C: "a separate histogram is
/// created for every query plan in the plan space ... a total of t x n
/// histograms are allocated").
class PlanSynopsis {
 public:
  PlanSynopsis(size_t transform_count, size_t max_buckets,
               StreamingHistogram::MergePolicy policy);

  /// Records one sample of this plan at `position` in transform
  /// `transform_idx`'s linearized space, with execution cost `cost`.
  void Insert(size_t transform_idx, double position, double cost);

  /// Density estimate: the median over transforms of the count in
  /// [positions[i] - deltas[i], positions[i] + deltas[i]].
  double MedianCount(const std::vector<double>& positions,
                     const std::vector<double>& deltas) const;

  /// Median over transforms of the average cost in the same ranges,
  /// taken over transforms with non-zero local density.
  double MedianAverageCost(const std::vector<double>& positions,
                           const std::vector<double>& deltas) const;

  /// Interval-list variants: ranges[i] is the (sorted, disjoint) set of
  /// curve intervals to query in transform i; the per-transform count is
  /// the sum over intervals (exact Z-range decomposition mode).
  double MedianCount(const std::vector<std::vector<ZInterval>>& ranges) const;
  double MedianAverageCost(
      const std::vector<std::vector<ZInterval>>& ranges) const;

  /// Batched per-transform counts for the serving fast path:
  /// `ranges_by_transform[i][p]` is point p's interval list in transform i
  /// (transform-major layout), and the summed count of that list lands in
  /// `counts_out[i * point_count + p]`. Iterates transform-outer /
  /// point-inner so one histogram's bucket array stays cache-resident
  /// across the whole batch — this is the "group range queries per
  /// intermediate space" amortization. Each individual interval sum uses
  /// the same accumulation order as the scalar MedianCount, so a median
  /// assembled from `counts_out` is bit-identical to the scalar result.
  void BatchTransformCounts(
      const std::vector<std::vector<std::vector<ZInterval>>>&
          ranges_by_transform,
      size_t point_count, double* counts_out) const;

  /// Samples inserted (identical across transforms; per-transform count).
  size_t SampleCount() const;

  /// Paper accounting: t * b_h * 12 bytes for this plan.
  uint64_t SpaceBytes() const;

  void Clear();

  size_t transform_count() const { return histograms_.size(); }
  const StreamingHistogram& histogram(size_t i) const {
    return histograms_[i];
  }

  /// Appends a binary snapshot of all per-transform histograms.
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs a synopsis from a snapshot.
  static Result<PlanSynopsis> Deserialize(ByteReader* reader);

 private:
  PlanSynopsis() = default;  // used by Deserialize

  std::vector<StreamingHistogram> histograms_;
};

}  // namespace ppc

#endif  // PPC_PPC_PLAN_SYNOPSIS_H_
