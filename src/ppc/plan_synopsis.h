#ifndef PPC_PPC_PLAN_SYNOPSIS_H_
#define PPC_PPC_PLAN_SYNOPSIS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "lsh/zorder.h"
#include "stats/streaming_histogram.h"

namespace ppc {

/// The serving fast path's view of a batch's query ranges: all intervals
/// in one flat array, transform-major (every interval of transform 0, then
/// transform 1, ...), with slot (i, p) = i * point_count + p addressing
/// point p's intervals in transform i. Replaces the
/// vector<vector<vector<ZInterval>>> nesting, whose per-slot allocations
/// dominated the predict profile. Non-owning — the backing storage lives
/// in the caller's per-request scratch.
struct FlatQueryRanges {
  const ZInterval* intervals = nullptr;
  /// Slot offsets into `intervals`: slot k covers
  /// [offsets[k], offsets[k+1]). nullptr means every slot holds exactly
  /// one interval (the paper's single-range mode) and slot k is
  /// intervals[k .. k+1).
  const uint32_t* offsets = nullptr;
  size_t transform_count = 0;
  size_t point_count = 0;

  /// [begin, end) of slot (transform i, point p)'s intervals.
  std::pair<const ZInterval*, const ZInterval*> Slice(size_t i,
                                                      size_t p) const {
    const size_t k = i * point_count + p;
    if (offsets == nullptr) return {intervals + k, intervals + k + 1};
    return {intervals + offsets[k], intervals + offsets[k + 1]};
  }
};

/// The histogram synopsis of one query plan's sample distribution: one
/// bounded-bucket database histogram per randomized transform, keyed by
/// Z-order-linearized position (paper Sec. IV-C: "a separate histogram is
/// created for every query plan in the plan space ... a total of t x n
/// histograms are allocated").
class PlanSynopsis {
 public:
  PlanSynopsis(size_t transform_count, size_t max_buckets,
               StreamingHistogram::MergePolicy policy);

  /// Records one sample of this plan at `position` in transform
  /// `transform_idx`'s linearized space, with execution cost `cost`.
  void Insert(size_t transform_idx, double position, double cost);

  /// Density estimate: the median over transforms of the count in
  /// [positions[i] - deltas[i], positions[i] + deltas[i]].
  double MedianCount(const std::vector<double>& positions,
                     const std::vector<double>& deltas) const;

  /// Median over transforms of the average cost in the same ranges,
  /// taken over transforms with non-zero local density.
  double MedianAverageCost(const std::vector<double>& positions,
                           const std::vector<double>& deltas) const;

  /// Interval-list variants: ranges[i] is the (sorted, disjoint) set of
  /// curve intervals to query in transform i; the per-transform count is
  /// the sum over intervals (exact Z-range decomposition mode).
  double MedianCount(const std::vector<std::vector<ZInterval>>& ranges) const;
  double MedianAverageCost(
      const std::vector<std::vector<ZInterval>>& ranges) const;

  /// MedianAverageCost of one point's slots in a flat batch view, writing
  /// the per-transform costs into `scratch` (>= transform_count doubles)
  /// instead of allocating. Bit-identical to the vector overload.
  double MedianAverageCost(const FlatQueryRanges& ranges, size_t point,
                           double* scratch) const;

  /// Exports every transform's probe table for the combined count+cost
  /// kernel into `probes` (caller-provided, >= transform_count * 5 *
  /// stride doubles, stride >= every histogram's bucket_count()).
  /// Transform i's table starts at probes + i * 5 * stride and holds the
  /// five arrays [left | right | count | cost | centroid], each `stride`
  /// apart. Pairs with MedianAverageCostFromProbes, which amortizes the
  /// per-bucket extent math once per (synopsis, batch) instead of once
  /// per (point, bucket, estimate).
  void ExportCostProbes(size_t stride, double* probes) const;

  /// MedianAverageCost of one point's slots computed from a table built by
  /// ExportCostProbes, via the runtime-dispatched
  /// simd::HistogramRangeCountCost kernel. Bit-identical to the
  /// MedianAverageCost overloads above (which remain the oracle): per
  /// interval the kernel's count matches EstimateCount bit for bit and the
  /// caller reconstructs c * EstimateAverageCost as c * (cost / c).
  double MedianAverageCostFromProbes(const FlatQueryRanges& ranges,
                                     size_t point, size_t stride,
                                     const double* probes,
                                     double* scratch) const;

  /// Batched MedianAverageCostFromProbes over the `n` points
  /// point_idx[0..n) of a single-range batch (ranges.offsets == nullptr;
  /// callers in interval-decomposition mode use the per-point variant).
  /// One across-queries kernel call per transform covers every selected
  /// point; out[k] receives point_idx[k]'s median average cost,
  /// bit-identical to the per-point form. Caller-provided workspaces:
  /// bounds_ws >= 2 * n, counts_ws and costs_ws >= transform_count * n,
  /// median_ws >= transform_count doubles.
  void BatchAverageCostsFromProbes(const FlatQueryRanges& ranges,
                                   const uint32_t* point_idx, size_t n,
                                   size_t stride, const double* probes,
                                   double* bounds_ws, double* counts_ws,
                                   double* costs_ws, double* median_ws,
                                   double* out) const;

  /// Batched per-transform counts for the serving fast path:
  /// `ranges_by_transform[i][p]` is point p's interval list in transform i
  /// (transform-major layout), and the summed count of that list lands in
  /// `counts_out[i * point_count + p]`. Iterates transform-outer /
  /// point-inner so one histogram's bucket array stays cache-resident
  /// across the whole batch — this is the "group range queries per
  /// intermediate space" amortization. Each individual interval sum uses
  /// the same accumulation order as the scalar MedianCount, so a median
  /// assembled from `counts_out` is bit-identical to the scalar result.
  void BatchTransformCounts(
      const std::vector<std::vector<std::vector<ZInterval>>>&
          ranges_by_transform,
      size_t point_count, double* counts_out) const;

  /// Flat, allocation-free variant used by the predict hot path: same
  /// semantics and bit-identical results (the nested overload above is
  /// the oracle), but ranges come as a FlatQueryRanges view, each
  /// histogram's bucket extents are exported once per batch into
  /// `probe_scratch` (caller-provided, >= 4 * max_buckets doubles, e.g.
  /// arena-backed), and each interval is counted by the runtime-dispatched
  /// simd::HistogramRangeCount kernel.
  void BatchTransformCounts(const FlatQueryRanges& ranges, double* counts_out,
                            double* probe_scratch) const;

  /// Samples inserted (identical across transforms; per-transform count).
  size_t SampleCount() const;

  /// Paper accounting: t * b_h * 12 bytes for this plan.
  uint64_t SpaceBytes() const;

  void Clear();

  size_t transform_count() const { return histograms_.size(); }
  const StreamingHistogram& histogram(size_t i) const {
    return histograms_[i];
  }

  /// Appends a binary snapshot of all per-transform histograms.
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs a synopsis from a snapshot.
  static Result<PlanSynopsis> Deserialize(ByteReader* reader);

 private:
  PlanSynopsis() = default;  // used by Deserialize

  std::vector<StreamingHistogram> histograms_;
};

}  // namespace ppc

#endif  // PPC_PPC_PLAN_SYNOPSIS_H_
