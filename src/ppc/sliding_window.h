#ifndef PPC_PPC_SLIDING_WINDOW_H_
#define PPC_PPC_SLIDING_WINDOW_H_

#include <cstddef>
#include <deque>
#include <map>

#include "plan/fingerprint.h"

namespace ppc {

/// Windowed proportion estimator: the fraction of `true` observations among
/// the most recent `k`.
class SlidingWindowEstimator {
 public:
  explicit SlidingWindowEstimator(size_t window_size);

  void Record(bool success);

  /// Proportion over the current window; 0 when empty.
  double Value() const;

  size_t Count() const { return window_.size(); }
  bool Full() const { return window_.size() == window_size_; }
  void Clear();

 private:
  size_t window_size_;
  std::deque<bool> window_;
  size_t successes_ = 0;
};

/// The paper's Sec. IV-E online estimators: prec_k[P_i] tracks the
/// precision of the last k predictions of each plan; prec_k[Q] and
/// rec_k[Q] track the template's overall precision and recall over the
/// last k predictions (recall via rec_k = beta * prec_k, where beta is the
/// NULL-free fraction).
class PrecisionRecallTracker {
 public:
  explicit PrecisionRecallTracker(size_t window_size);

  /// Records one prediction event. `made` is false for a NULL prediction;
  /// `correct` is the (estimated) correctness of a non-NULL prediction.
  void RecordPrediction(PlanId plan, bool made, bool correct);

  /// prec_k[Q]: estimated precision of recent non-NULL predictions.
  double TemplatePrecision() const { return template_precision_.Value(); }

  /// beta(Q): NULL-free fraction of recent predictions.
  double Beta() const { return beta_.Value(); }

  /// rec_k[Q] = beta(Q) * prec_k[Q].
  double TemplateRecall() const { return Beta() * TemplatePrecision(); }

  /// prec_k[P]: estimated precision of recent predictions of one plan
  /// (1.0 when the plan has no recorded predictions yet).
  double PlanPrecision(PlanId plan) const;

  /// True when the template precision window is full and its value is
  /// below `threshold` — the paper's plan-space-change signal.
  bool PrecisionBelow(double threshold) const;

  /// True when the template precision window has seen a full k
  /// observations — below that the estimates are warm-up noise, and
  /// neither drift resets nor retune triggers should act on them.
  bool WindowFull() const { return template_precision_.Full(); }

  /// True when the beta window has seen a full k queries. The beta window
  /// records every query (made or NULL), so it keeps filling even when
  /// the predictor answers NULL across the board and the precision window
  /// stalls — recall-collapse triggers must gate on this one.
  bool BetaWindowFull() const { return beta_.Full(); }

  void Clear();

 private:
  size_t window_size_;
  SlidingWindowEstimator template_precision_;
  SlidingWindowEstimator beta_;
  std::map<PlanId, SlidingWindowEstimator> per_plan_;
};

}  // namespace ppc

#endif  // PPC_PPC_SLIDING_WINDOW_H_
