#include "ppc/plan_cache.h"

#include <algorithm>

#include "common/macros.h"

namespace ppc {

namespace {

size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// SplitMix64 finalizer: PlanIds are fingerprint hashes already, but the
/// extra mix guards against id distributions that collide on low bits.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* CacheEvictionPolicyName(CacheEvictionPolicy policy) {
  switch (policy) {
    case CacheEvictionPolicy::kPrecisionThenLru:
      return "precision+LRU";
    case CacheEvictionPolicy::kLru:
      return "LRU";
    case CacheEvictionPolicy::kLfu:
      return "LFU";
  }
  return "unknown";
}

PlanCache::PlanCache(size_t capacity, CacheEvictionPolicy policy,
                     size_t shard_count)
    : capacity_(capacity),
      policy_(policy),
      shards_(RoundUpToPowerOfTwo(std::max<size_t>(1, shard_count))) {
  PPC_CHECK(capacity >= 1);
}

PlanCache::Shard& PlanCache::ShardFor(PlanId id) const {
  return shards_[MixId(id) & (shards_.size() - 1)];
}

void PlanCache::Put(PlanId id, std::unique_ptr<PlanNode> plan) {
  PPC_CHECK(id != kNullPlanId && plan != nullptr);
  std::shared_ptr<const PlanNode> shared(std::move(plan));
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(id);
    if (it != shard.entries.end()) {
      it->second.plan = std::move(shared);
      it->second.last_use = Tick();
      it->second.uses = 0;
      it->second.precision_score = 1.0;
      return;
    }
  }
  // Make room before inserting so the incoming plan is never its own
  // eviction victim (LFU would otherwise evict the 0-use newcomer).
  while (size_.load(std::memory_order_acquire) >= capacity_) {
    if (!EvictOne()) break;
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.entries.try_emplace(id);
    it->second.plan = std::move(shared);
    it->second.last_use = Tick();
    if (inserted) {
      size_.fetch_add(1, std::memory_order_acq_rel);
    } else {
      // A racing Put of the same id landed first: treat as overwrite.
      it->second.uses = 0;
      it->second.precision_score = 1.0;
    }
  }
  // Concurrent inserters may transiently overshoot; converge back down.
  while (size_.load(std::memory_order_acquire) > capacity_) {
    if (!EvictOne()) break;
  }
}

std::shared_ptr<const PlanNode> PlanCache::Get(PlanId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++shard.misses;
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  ++shard.hits;
  it->second.last_use = Tick();
  ++it->second.uses;
  return it->second.plan;
}

bool PlanCache::Contains(PlanId id) const {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.count(id) > 0;
}

void PlanCache::SetPrecisionScore(PlanId id, double score) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it != shard.entries.end()) it->second.precision_score = score;
}

std::optional<double> PlanCache::PrecisionScore(PlanId id) const {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) return std::nullopt;
  return it->second.precision_score;
}

void PlanCache::Erase(PlanId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.erase(id) > 0) {
    size_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void PlanCache::Clear() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (Shard& shard : shards_) locks.emplace_back(shard.mu);
  for (Shard& shard : shards_) shard.entries.clear();
  size_.store(0, std::memory_order_release);
}

std::vector<PlanId> PlanCache::PlanIds() const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (Shard& shard : shards_) locks.emplace_back(shard.mu);
  std::vector<PlanId> ids;
  for (const Shard& shard : shards_) {
    for (const auto& [id, _] : shard.entries) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool PlanCache::Worse(const Entry& cand, const Entry& best) const {
  switch (policy_) {
    case CacheEvictionPolicy::kPrecisionThenLru:
      if (cand.precision_score != best.precision_score) {
        return cand.precision_score < best.precision_score;
      }
      return cand.last_use < best.last_use;
    case CacheEvictionPolicy::kLru:
      return cand.last_use < best.last_use;
    case CacheEvictionPolicy::kLfu:
      if (cand.uses != best.uses) return cand.uses < best.uses;
      return cand.last_use < best.last_use;
  }
  return false;
}

bool PlanCache::EvictOne() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (Shard& shard : shards_) locks.emplace_back(shard.mu);

  Shard* victim_shard = nullptr;
  std::map<PlanId, Entry>::iterator victim;
  for (Shard& shard : shards_) {
    for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
      if (victim_shard == nullptr || Worse(it->second, victim->second)) {
        victim_shard = &shard;
        victim = it;
      }
    }
  }
  if (victim_shard == nullptr) return false;
  if (policy_ == CacheEvictionPolicy::kPrecisionThenLru &&
      victim->second.precision_score < 1.0) {
    precision_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  victim_shard->entries.erase(victim);
  size_.fetch_sub(1, std::memory_order_acq_rel);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats stats;
  stats.hits = hits();
  stats.misses = misses();
  stats.evictions = evictions();
  stats.precision_evictions = precision_evictions();
  stats.size = size();
  stats.capacity = capacity_;
  stats.shards.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.shards.push_back(
        ShardStats{shard.entries.size(), shard.hits, shard.misses});
  }
  return stats;
}

}  // namespace ppc
