#include "ppc/plan_cache.h"

#include "common/macros.h"

namespace ppc {

const char* CacheEvictionPolicyName(CacheEvictionPolicy policy) {
  switch (policy) {
    case CacheEvictionPolicy::kPrecisionThenLru:
      return "precision+LRU";
    case CacheEvictionPolicy::kLru:
      return "LRU";
    case CacheEvictionPolicy::kLfu:
      return "LFU";
  }
  return "unknown";
}

PlanCache::PlanCache(size_t capacity, CacheEvictionPolicy policy)
    : capacity_(capacity), policy_(policy) {
  PPC_CHECK(capacity >= 1);
}

void PlanCache::Put(PlanId id, std::unique_ptr<PlanNode> plan) {
  PPC_CHECK(id != kNullPlanId && plan != nullptr);
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.plan = std::move(plan);
    it->second.last_use = ++clock_;
    return;
  }
  if (entries_.size() >= capacity_) EvictOne();
  Entry entry;
  entry.plan = std::move(plan);
  entry.last_use = ++clock_;
  entries_.emplace(id, std::move(entry));
}

const PlanNode* PlanCache::Get(PlanId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_use = ++clock_;
  ++it->second.uses;
  return it->second.plan.get();
}

bool PlanCache::Contains(PlanId id) const { return entries_.count(id) > 0; }

void PlanCache::SetPrecisionScore(PlanId id, double score) {
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second.precision_score = score;
}

void PlanCache::Erase(PlanId id) { entries_.erase(id); }

void PlanCache::Clear() { entries_.clear(); }

std::vector<PlanId> PlanCache::PlanIds() const {
  std::vector<PlanId> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, _] : entries_) ids.push_back(id);
  return ids;
}

void PlanCache::EvictOne() {
  PPC_DCHECK(!entries_.empty());
  auto victim = entries_.begin();
  auto worse = [this](const Entry& cand, const Entry& best) {
    switch (policy_) {
      case CacheEvictionPolicy::kPrecisionThenLru:
        if (cand.precision_score != best.precision_score) {
          return cand.precision_score < best.precision_score;
        }
        return cand.last_use < best.last_use;
      case CacheEvictionPolicy::kLru:
        return cand.last_use < best.last_use;
      case CacheEvictionPolicy::kLfu:
        if (cand.uses != best.uses) return cand.uses < best.uses;
        return cand.last_use < best.last_use;
    }
    return false;
  };
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (worse(it->second, victim->second)) victim = it;
  }
  entries_.erase(victim);
  ++evictions_;
}

}  // namespace ppc
