#ifndef PPC_PPC_PREDICTOR_STATE_H_
#define PPC_PPC_PREDICTOR_STATE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppc {

class PpcFramework;

/// The replicable half of a PpcFramework: every registered template's
/// learned predictor state, captured as one versioned, checksummed blob.
///
/// This is the unit of warm-start replication (DESIGN.md §15): a leader
/// shard captures its state, a joining shard fetches the blob over the
/// wire (SNAPSHOT), validates it outside-in, and adopts it into its own
/// registered predictors — serving from the leader's densities instead of
/// cold-learning. The framework's *non*-replicable state (plan cache
/// contents, precision/recall windows, RNGs) deliberately stays local:
/// plans re-enter a replica's cache through its own optimizer, and the
/// estimator windows must measure the replica's serving quality.
///
/// Each per-template predictor blob is itself the predictor's versioned
/// snapshot format, carried opaquely here with a content hash — so delta
/// snapshots (templates changed since a base) fall out of hash
/// comparison, and a replica can cheaply tell whether anything changed.
class PredictorState {
 public:
  struct TemplateEntry {
    std::string name;
    /// Transform generation the blob was captured at (PPCR v2). Carried
    /// redundantly with the generation inside the blob so the container
    /// can gate cross-generation mixing without parsing the opaque blob,
    /// and the two must agree (ApplyTo verifies).
    uint32_t generation = 0;
    /// FNV-1a of `blob`; doubles as per-entry integrity check and the
    /// change detector for delta serialization.
    uint64_t content_hash = 0;
    /// LshHistogramsPredictor::Serialize() output (opaque here).
    std::string blob;
  };

  /// Outcome of ApplyTo: how many templates were warm-started and how
  /// many were skipped because the target framework does not register
  /// them (heterogeneous template sets are allowed; config mismatches on
  /// a shared template are not — they fail the whole apply).
  struct ApplyReport {
    size_t templates_applied = 0;
    size_t templates_skipped = 0;
    /// Of the applied templates, how many arrived from a newer transform
    /// generation and were installed via the warm generation handoff
    /// (rather than adopted in place).
    size_t generations_installed = 0;
  };

  PredictorState() = default;

  /// Captures every registered template's predictor snapshot. Safe
  /// against concurrent serving (each predictor serializes under its
  /// read lock); the capture is per-template consistent, not one atomic
  /// cut across templates — the same guarantee MetricsSnapshot gives.
  static PredictorState Capture(const PpcFramework& framework);

  /// Serializes as a full snapshot (format PPCR v2, trailing FNV-1a
  /// checksum).
  std::string Serialize() const;

  /// Serializes only the templates whose content hash differs from (or
  /// is absent in) `base`, flagged as a delta. Applying requires the
  /// base: see RestoreDelta.
  std::string SerializeDelta(const PredictorState& base) const;

  /// Parses a full snapshot. Fails with InvalidArgument on bad magic,
  /// unsupported version, checksum mismatch, structural corruption, or a
  /// delta blob (which needs RestoreDelta).
  static Result<PredictorState> Restore(const std::string& bytes);

  /// Parses a delta blob and overlays it on `base`, returning the merged
  /// state stamped with the delta's sequence.
  static Result<PredictorState> RestoreDelta(const std::string& bytes,
                                             const PredictorState& base);

  /// Subset copy holding only the entries `keep` accepts, carrying the
  /// same capture sequence. This is how the router's replica
  /// warm-keeping ships a primary's *authoritative* templates (and only
  /// those) to their replica shard: a full capture contains every
  /// registered template — cold copies included — and applying it
  /// unfiltered would overwrite the receiving shard's own warm state for
  /// the templates it is primary for (DESIGN.md §18). Entry order (and
  /// thus serializability) is preserved.
  PredictorState Filtered(
      const std::function<bool(const TemplateEntry&)>& keep) const;

  /// Warm-starts `framework`'s registered predictors from this state.
  /// Templates unknown to the framework are skipped (counted); a
  /// predictor-config mismatch or corrupt per-template blob fails the
  /// whole apply with InvalidArgument. Generation semantics (DESIGN.md
  /// §17): an entry at the local transform generation is adopted in
  /// place; an entry from a *newer* generation is installed through the
  /// warm generation handoff (the replica follows the leader's refit); an
  /// entry from an *older* generation is stale and fails the apply —
  /// generations never mix.
  Result<ApplyReport> ApplyTo(PpcFramework* framework) const;

  /// Leader-side capture sequence (monotonic per process).
  uint64_t sequence() const { return sequence_; }
  /// Entries sorted by template name.
  const std::vector<TemplateEntry>& entries() const { return entries_; }

  /// Order-sensitive hash over (name, content_hash) pairs: equal hashes
  /// mean the two states carry identical predictor bytes.
  uint64_t ContentHash() const;

 private:
  std::string SerializeEntries(const std::vector<TemplateEntry>& entries,
                               bool is_delta) const;

  uint64_t sequence_ = 0;
  std::vector<TemplateEntry> entries_;
};

}  // namespace ppc

#endif  // PPC_PPC_PREDICTOR_STATE_H_
