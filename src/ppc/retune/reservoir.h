#ifndef PPC_PPC_RETUNE_RESERVOIR_H_
#define PPC_PPC_RETUNE_RESERVOIR_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "clustering/predictor.h"
#include "common/rng.h"

namespace ppc {

/// Bounded, seeded, recency-biased reservoir of ground-truth observations
/// for one query template — the sample the adaptive-retuning refit fits
/// fresh LSH transforms to and back-fills the new generation from
/// (DESIGN.md §17).
///
/// Sampling discipline (Aggarwal-style biased reservoir): the reservoir
/// fills to capacity, after which every new observation overwrites a
/// uniformly random slot. A retained point's survival probability decays
/// as (1 - 1/C)^k over the k observations that follow it, so the reservoir
/// tracks the *recent* query-point distribution with expected memory of
/// about C observations — old-regime points age out instead of anchoring
/// the refit to a dead workload. All draws come from one seeded Rng, so a
/// run is exactly reproducible.
///
/// Thread safety: Add and SnapshotPoints may be called concurrently from
/// any threads (one mutex; Add is O(1), SnapshotPoints copies out).
class RetainedPointReservoir {
 public:
  RetainedPointReservoir(size_t capacity, uint64_t seed);

  /// Records one (point, plan, cost) ground-truth observation.
  void Add(const LabeledPoint& point);

  /// Copy of the currently retained points, in no particular order.
  std::vector<LabeledPoint> SnapshotPoints() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Lifetime count of observations offered via Add.
  uint64_t total_observed() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  Rng rng_;
  std::vector<LabeledPoint> points_;
  uint64_t observed_ = 0;
};

}  // namespace ppc

#endif  // PPC_PPC_RETUNE_RESERVOIR_H_
