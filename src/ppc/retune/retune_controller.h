#ifndef PPC_PPC_RETUNE_RETUNE_CONTROLLER_H_
#define PPC_PPC_RETUNE_RETUNE_CONTROLLER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ppc/online_predictor.h"
#include "ppc/retune/reservoir.h"

namespace ppc {

class PpcFramework;
class MetricsCounter;
class LatencyHistogram;

/// Tuning knobs of the adaptive-retuning loop (DESIGN.md §17).
struct RetuneOptions {
  /// Master switch; the framework creates no controller when false.
  bool enabled = false;
  /// Refit when the windowed template precision falls below this (the
  /// window must be full). <= 0 never triggers on precision.
  double precision_trigger = 0.6;
  /// Refit when the windowed template recall falls below this (window
  /// full). <= 0 disables the recall trigger.
  double recall_trigger = 0.0;
  /// Per-template retained-point reservoir capacity. Also bounds how much
  /// history a refit can back-fill.
  size_t reservoir_capacity = 256;
  /// A refit is skipped (and the trigger re-arms) until the reservoir
  /// holds at least this many points — fitting ranges to a handful of
  /// observations would thrash.
  size_t min_reservoir_points = 64;
  /// Ground-truth observations a template must accumulate after a refit
  /// before the trigger can fire again — lets the new generation's window
  /// fill before it can be judged.
  size_t cooldown_observations = 200;
  /// Range fitting: per-dimension [lo, hi] are the (q, 1-q) quantiles of
  /// the retained points, so a few straggling old-regime points cannot
  /// pin the fitted span to the stale workload's extent.
  double range_fit_quantile = 0.05;
  /// Fractional margin added on each side of the fitted span (and the
  /// floor on the span itself), so boundary queries keep headroom and a
  /// point mass cannot produce a degenerate range.
  double range_margin = 0.10;
  double min_range_span = 1e-3;
  uint64_t seed = 1789;
};

/// Drift-triggered transform retuning (the Tunable-LSH idea applied to the
/// paper's fixed randomized transforms): watches each template's
/// sliding-window precision/recall signal, and past the configured
/// degradation threshold hands the template to a background worker that
/// re-fits per-dimension input ranges to the retained recent points,
/// builds a new-generation LshHistogramsPredictor, back-fills it from the
/// reservoir, and installs it via PpcFramework::InstallPredictorGeneration
/// — an atomic shared_ptr flip the serving paths never block on.
///
/// Trigger policy: a degradation verdict AND reservoir >=
/// min_reservoir_points AND >= cooldown_observations observations since
/// the last refit AND no refit already in flight for the template.
/// Degradation is precision < precision_trigger (gated on the
/// made-prediction window being full) OR recall < recall_trigger (gated
/// on the every-query beta window being full — the precision window
/// stops filling when predictions go all-NULL, exactly the collapse the
/// recall trigger exists to catch). Skips and aborts are counted, never
/// silent (server.retune.* instruments).
///
/// Thread safety: ObserveGroundTruth / EvaluateTrigger are called from
/// serving threads and are cheap (reservoir mutex, a few relaxed
/// atomics); the refit itself runs on the single background worker.
/// Stop() (idempotent, called by the framework destructor) drains nothing
/// — queued refits are abandoned — and joins the worker.
class RetuneController {
 public:
  RetuneController(PpcFramework* framework, RetuneOptions options);
  ~RetuneController();

  RetuneController(const RetuneController&) = delete;
  RetuneController& operator=(const RetuneController&) = delete;

  /// Feeds one (point, plan, cost) observation into the template's
  /// reservoir. The EXECUTE path calls this for every optimizer result
  /// and for every cost-validated served prediction — a warm cache
  /// rarely optimizes, and reservoir retention must track the live
  /// query-point distribution, not just the optimizer's trickle.
  void ObserveGroundTruth(const std::string& template_name,
                          const LabeledPoint& point);

  /// Evaluates the trigger policy against a just-taken drift signal and
  /// enqueues a background refit when it fires.
  void EvaluateTrigger(const std::string& template_name,
                       const OnlinePpcPredictor::WindowedSignal& signal);

  /// Test/bench hook: enqueues a refit unconditionally (still subject to
  /// min_reservoir_points inside the worker). Returns false if one is
  /// already in flight or the controller is stopped.
  bool ForceRetune(const std::string& template_name);

  /// Blocks until the queue is empty and no refit is running.
  void WaitIdle();

  /// Stops the worker (idempotent). Pending queued refits are dropped.
  void Stop();

  /// Fits per-dimension [lo, hi] ranges from `points` per the options'
  /// quantile/margin/min-span policy. Exposed for tests; requires a
  /// non-empty, dimension-consistent sample.
  static void FitRanges(const std::vector<LabeledPoint>& points,
                        const RetuneOptions& options,
                        std::vector<double>* lo, std::vector<double>* hi);

 private:
  struct TemplateSlot {
    explicit TemplateSlot(size_t capacity, uint64_t seed)
        : reservoir(capacity, seed) {}
    RetainedPointReservoir reservoir;
    /// Ground truth accumulated since the last completed refit (or since
    /// start); gates the cooldown.
    std::atomic<uint64_t> observations_since_refit{0};
    /// Set while the template is queued or refitting; prevents duplicate
    /// enqueues.
    std::atomic<bool> in_flight{false};
  };

  TemplateSlot& Slot(const std::string& template_name);
  bool Enqueue(const std::string& template_name);
  void WorkerLoop();
  /// One refit: snapshot reservoir, fit ranges, build + back-fill the next
  /// generation, install. Returns true when a new generation was
  /// installed.
  bool RefitTemplate(const std::string& template_name, TemplateSlot& slot);

  PpcFramework* const framework_;
  const RetuneOptions options_;

  /// Instruments (server.retune.*), resolved once from the framework's
  /// registry.
  struct {
    MetricsCounter* triggers = nullptr;
    MetricsCounter* refits = nullptr;
    MetricsCounter* skipped = nullptr;
    MetricsCounter* aborted = nullptr;
    MetricsCounter* points_backfilled = nullptr;
    MetricsCounter* generations = nullptr;
    LatencyHistogram* refit_us = nullptr;
  } instruments_;

  std::mutex slots_mu_;
  std::map<std::string, std::unique_ptr<TemplateSlot>> slots_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::string> queue_;
  bool stopped_ = false;
  bool worker_busy_ = false;
  std::thread worker_;
};

}  // namespace ppc

#endif  // PPC_PPC_RETUNE_RETUNE_CONTROLLER_H_
