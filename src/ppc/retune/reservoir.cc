#include "ppc/retune/reservoir.h"

#include "common/macros.h"

namespace ppc {

RetainedPointReservoir::RetainedPointReservoir(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  PPC_CHECK(capacity >= 1);
  points_.reserve(capacity);
}

void RetainedPointReservoir::Add(const LabeledPoint& point) {
  std::lock_guard<std::mutex> lock(mu_);
  ++observed_;
  if (points_.size() < capacity_) {
    points_.push_back(point);
    return;
  }
  points_[static_cast<size_t>(rng_.UniformInt(
      static_cast<uint64_t>(capacity_)))] = point;
}

std::vector<LabeledPoint> RetainedPointReservoir::SnapshotPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_;
}

size_t RetainedPointReservoir::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.size();
}

uint64_t RetainedPointReservoir::total_observed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_;
}

}  // namespace ppc
