#include "ppc/retune/retune_controller.h"

#include <algorithm>
#include <chrono>

#include "common/hash.h"
#include "common/macros.h"
#include "common/math_utils.h"
#include "ppc/ppc_framework.h"
#include "server/failpoints.h"

namespace ppc {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

RetuneController::RetuneController(PpcFramework* framework,
                                   RetuneOptions options)
    : framework_(framework), options_(options) {
  PPC_CHECK(framework != nullptr);
  MetricsRegistry& metrics = framework_->metrics();
  instruments_.triggers = &metrics.counter("server.retune.triggers");
  instruments_.refits = &metrics.counter("server.retune.refits");
  instruments_.skipped = &metrics.counter("server.retune.skipped");
  instruments_.aborted = &metrics.counter("server.retune.aborted");
  instruments_.points_backfilled =
      &metrics.counter("server.retune.points_backfilled");
  instruments_.generations = &metrics.counter("server.retune.generations");
  instruments_.refit_us = &metrics.histogram("server.retune.refit_us");
  worker_ = std::thread([this] { WorkerLoop(); });
}

RetuneController::~RetuneController() { Stop(); }

RetuneController::TemplateSlot& RetuneController::Slot(
    const std::string& template_name) {
  std::lock_guard<std::mutex> lock(slots_mu_);
  auto it = slots_.find(template_name);
  if (it == slots_.end()) {
    it = slots_
             .emplace(template_name,
                      std::make_unique<TemplateSlot>(
                          options_.reservoir_capacity,
                          options_.seed ^ Fnv1a64(template_name)))
             .first;
  }
  return *it->second;
}

void RetuneController::ObserveGroundTruth(const std::string& template_name,
                                          const LabeledPoint& point) {
  TemplateSlot& slot = Slot(template_name);
  slot.reservoir.Add(point);
  slot.observations_since_refit.fetch_add(1, std::memory_order_relaxed);
}

void RetuneController::EvaluateTrigger(
    const std::string& template_name,
    const OnlinePpcPredictor::WindowedSignal& signal) {
  // A partial window is warm-up noise, not a drift verdict. Each trigger
  // gates on the window that feeds its estimate: precision on the
  // made-prediction window, recall on the every-query beta window. The
  // distinction matters when the predictor answers NULL across the board
  // — the precision window stops filling, and a recall trigger gated on
  // it would never fire again.
  const bool precision_degraded = signal.window_full &&
                                  options_.precision_trigger > 0.0 &&
                                  signal.precision <
                                      options_.precision_trigger;
  const bool recall_degraded = signal.beta_window_full &&
                               options_.recall_trigger > 0.0 &&
                               signal.recall < options_.recall_trigger;
  if (!precision_degraded && !recall_degraded) return;

  TemplateSlot& slot = Slot(template_name);
  if (slot.in_flight.load(std::memory_order_acquire)) return;
  if (slot.observations_since_refit.load(std::memory_order_relaxed) <
      options_.cooldown_observations) {
    return;
  }
  if (slot.reservoir.size() < options_.min_reservoir_points) return;
  if (Enqueue(template_name)) instruments_.triggers->Increment();
}

bool RetuneController::ForceRetune(const std::string& template_name) {
  return Enqueue(template_name);
}

bool RetuneController::Enqueue(const std::string& template_name) {
  TemplateSlot& slot = Slot(template_name);
  bool expected = false;
  if (!slot.in_flight.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopped_) {
      slot.in_flight.store(false, std::memory_order_release);
      return false;
    }
    queue_.push_back(template_name);
  }
  queue_cv_.notify_one();
  return true;
}

void RetuneController::WorkerLoop() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return stopped_ || !queue_.empty(); });
    if (stopped_) return;
    const std::string name = queue_.front();
    queue_.pop_front();
    worker_busy_ = true;
    lock.unlock();

    TemplateSlot& slot = Slot(name);
    RefitTemplate(name, slot);
    slot.in_flight.store(false, std::memory_order_release);

    lock.lock();
    worker_busy_ = false;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

bool RetuneController::RefitTemplate(const std::string& template_name,
                                     TemplateSlot& slot) {
  const std::shared_ptr<const OnlinePpcPredictor> current =
      framework_->online_predictor(template_name);
  if (current == nullptr) {
    instruments_.skipped->Increment();
    return false;
  }
  const std::vector<LabeledPoint> points = slot.reservoir.SnapshotPoints();
  if (points.size() < options_.min_reservoir_points) {
    instruments_.skipped->Increment();
    return false;
  }

  // Failpoint: kStallMs holds the refit open (stretching the window in
  // which serving runs against the old generation while the new one is
  // being built); kError abandons the refit, which must leave the
  // serving generation untouched.
  const failpoints::Action fault = failpoints::Hit(failpoints::Site::kRetune);
  failpoints::MaybeStall(fault);
  if (fault.kind == failpoints::Kind::kError) {
    instruments_.aborted->Increment();
    return false;
  }

  const auto start = Clock::now();

  // Fit the next generation's transforms to the retained recent points:
  // fresh ranges (quantile fit + margin), a new generation id (which
  // re-seeds the random transforms), and a back-fill of the reservoir so
  // the generation starts serving warm, never empty.
  LshHistogramsPredictor::Config next_config = current->predictor().config();
  next_config.transform_generation += 1;
  FitRanges(points, options_, &next_config.input_lo, &next_config.input_hi);

  LshHistogramsPredictor fresh(next_config);
  for (const LabeledPoint& point : points) fresh.Insert(point);

  OnlinePpcPredictor::Config online_config = current->config();
  online_config.predictor = fresh.config();
  auto next =
      std::make_shared<OnlinePpcPredictor>(online_config, std::move(fresh));
  // The tracker windows start empty on purpose (they judge the new
  // generation); the lifetime accounting carries over.
  next->InheritLifetimeCounters(*current);

  const Status installed =
      framework_->InstallPredictorGeneration(template_name, next);
  instruments_.refit_us->Record(MicrosSince(start));
  if (!installed.ok()) {
    instruments_.aborted->Increment();
    return false;
  }
  instruments_.points_backfilled->Increment(points.size());
  instruments_.refits->Increment();
  instruments_.generations->Increment();
  slot.observations_since_refit.store(0, std::memory_order_relaxed);
  return true;
}

void RetuneController::FitRanges(const std::vector<LabeledPoint>& points,
                                 const RetuneOptions& options,
                                 std::vector<double>* lo,
                                 std::vector<double>* hi) {
  PPC_CHECK(!points.empty());
  const size_t dims = points[0].coords.size();
  PPC_CHECK(dims >= 1);
  lo->assign(dims, 0.0);
  hi->assign(dims, 1.0);
  const double q = Clamp(options.range_fit_quantile, 0.0, 0.49);
  std::vector<double> values(points.size());
  for (size_t d = 0; d < dims; ++d) {
    for (size_t i = 0; i < points.size(); ++i) {
      PPC_CHECK(points[i].coords.size() == dims);
      values[i] = points[i].coords[d];
    }
    std::sort(values.begin(), values.end());
    // Quantile fit: the (q, 1-q) order statistics, so a few straggling
    // old-regime points in the reservoir cannot pin the span to the
    // stale workload's extent.
    const size_t lo_idx =
        static_cast<size_t>(q * static_cast<double>(values.size() - 1));
    const size_t hi_idx = values.size() - 1 - lo_idx;
    double fit_lo = values[lo_idx];
    double fit_hi = values[hi_idx];
    const double span = fit_hi - fit_lo;
    fit_lo -= span * options.range_margin;
    fit_hi += span * options.range_margin;
    if (fit_hi - fit_lo < options.min_range_span) {
      const double center = 0.5 * (fit_lo + fit_hi);
      fit_lo = center - 0.5 * options.min_range_span;
      fit_hi = center + 0.5 * options.min_range_span;
    }
    (*lo)[d] = fit_lo;
    (*hi)[d] = fit_hi;
  }
}

void RetuneController::WaitIdle() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  idle_cv_.wait(lock,
                [&] { return stopped_ || (queue_.empty() && !worker_busy_); });
}

void RetuneController::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_cv_.notify_all();
  idle_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

}  // namespace ppc
