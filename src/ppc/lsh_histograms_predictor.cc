#include "ppc/lsh_histograms_predictor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <string_view>

#include "clustering/confidence.h"
#include "common/arena.h"
#include "common/bytes.h"
#include "common/hash.h"
#include "common/math_utils.h"

namespace ppc {

namespace {

/// Per-thread workspace of the batched predict path. The arena is reset
/// per request; the vectors retain capacity across requests. Sized by the
/// largest batch the thread has served, so repeated serving reaches a
/// zero-heap-allocation steady state.
struct PredictScratch {
  Arena arena;
  std::vector<ZInterval> intervals;
  std::vector<uint32_t> offsets;
  std::vector<uint32_t> cell_lo;  // decomposition mode only
  std::vector<uint32_t> cell_hi;
};

PredictScratch& ThreadScratch() {
  thread_local PredictScratch scratch;
  return scratch;
}

TransformConfig MakeTransformConfig(
    const LshHistogramsPredictor::Config& config) {
  TransformConfig tc;
  tc.input_dims = config.dimensions;
  tc.output_dims = config.output_dims > 0
                       ? config.output_dims
                       : DefaultOutputDims(config.dimensions);
  tc.bits_per_dim = config.bits_per_dim;
  tc.input_lo = config.input_lo;
  tc.input_hi = config.input_hi;
  return tc;
}

/// Ensemble seed for a transform generation. Generation 0 must reproduce
/// the historical ensemble exactly (bit-stable snapshots depend on it), so
/// the perturbation vanishes there; later generations decorrelate via the
/// golden-ratio SplitMix64 increment.
uint64_t EnsembleSeed(const LshHistogramsPredictor::Config& config) {
  return config.seed +
         0x9e3779b97f4a7c15ull * static_cast<uint64_t>(
                                     config.transform_generation);
}

/// Clamps [position - delta, position + delta] to the histogram domain
/// [0, 1], sliding the interval inward first so a query at the plan-space
/// boundary still covers its full 2*delta of curve length. Shared by the
/// scalar and batched range builders so the two cannot drift apart.
ZInterval SlideClampInterval(double position, double delta) {
  double lo = position - delta;
  double hi = position + delta;
  if (lo < 0.0) {
    hi = std::min(1.0, hi - lo);
    lo = 0.0;
  } else if (hi > 1.0) {
    lo = std::max(0.0, lo - (hi - 1.0));
    hi = 1.0;
  }
  return ZInterval{lo, hi};
}

}  // namespace

LshHistogramsPredictor::LshHistogramsPredictor(Config config)
    : config_(config),
      transforms_(MakeTransformConfig(config), config.transform_count,
                  EnsembleSeed(config)) {}

LshHistogramsPredictor::LshHistogramsPredictor(
    Config config, const std::vector<LabeledPoint>& sample)
    : LshHistogramsPredictor(config) {
  for (const LabeledPoint& p : sample) Insert(p);
}

LshHistogramsPredictor::LshHistogramsPredictor(
    const LshHistogramsPredictor& other)
    : config_(other.config_),
      transforms_(other.transforms_),
      synopses_(other.synopses_),
      total_samples_(other.total_samples_) {}

LshHistogramsPredictor::LshHistogramsPredictor(
    LshHistogramsPredictor&& other) noexcept
    : config_(std::move(other.config_)),
      transforms_(std::move(other.transforms_)),
      synopses_(std::move(other.synopses_)),
      total_samples_(other.total_samples_) {}

LshHistogramsPredictor& LshHistogramsPredictor::operator=(
    const LshHistogramsPredictor& other) {
  if (this != &other) {
    config_ = other.config_;
    transforms_ = other.transforms_;
    synopses_ = other.synopses_;
    total_samples_ = other.total_samples_;
  }
  return *this;
}

LshHistogramsPredictor& LshHistogramsPredictor::operator=(
    LshHistogramsPredictor&& other) noexcept {
  if (this != &other) {
    config_ = std::move(other.config_);
    transforms_ = std::move(other.transforms_);
    synopses_ = std::move(other.synopses_);
    total_samples_ = other.total_samples_;
  }
  return *this;
}

void LshHistogramsPredictor::Insert(const LabeledPoint& point) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = synopses_.find(point.plan);
  if (it == synopses_.end()) {
    it = synopses_
             .emplace(point.plan,
                      PlanSynopsis(transforms_.size(),
                                   config_.histogram_buckets,
                                   config_.merge_policy))
             .first;
  }
  for (size_t i = 0; i < transforms_.size(); ++i) {
    it->second.Insert(i, transforms_[i].LinearizedPosition(point.coords),
                      point.cost);
  }
  ++total_samples_;
}

std::vector<std::vector<ZInterval>> LshHistogramsPredictor::QueryRanges(
    const std::vector<double>& x) const {
  std::vector<std::vector<ZInterval>> ranges(transforms_.size());
  for (size_t i = 0; i < transforms_.size(); ++i) {
    const RandomizedTransform& transform = transforms_[i];
    if (config_.interval_decomposition) {
      std::vector<uint32_t> lo, hi;
      transform.CellBox(x, config_.radius, &lo, &hi);
      ranges[i] =
          transform.curve().DecomposeBox(lo, hi, config_.max_z_intervals);
    } else {
      // The paper's single range: half-width from the hypersphere-volume
      // rule, floored at half a grid cell's share of the curve so the
      // range never degenerates below the Z-order resolution.
      const double position = transform.LinearizedPosition(x);
      const double cell_z =
          std::ldexp(1.0, -transform.curve().total_bits());
      const double delta = std::max(
          transform.RangeHalfWidth(config_.radius), 0.5 * cell_z);
      // Clamp to the histogram domain [0, 1], sliding the interval inward
      // first so a query at the plan-space boundary still covers its full
      // 2*delta of curve length (the decomposed branch clamps its cell box
      // to the grid; an unslid range would hang partly outside the domain
      // and silently query less mass near the boundary).
      ranges[i] = {SlideClampInterval(position, delta)};
    }
  }
  return ranges;
}

std::vector<std::vector<std::vector<ZInterval>>>
LshHistogramsPredictor::QueryRangesBatch(const double* points,
                                         size_t count) const {
  std::vector<std::vector<std::vector<ZInterval>>> ranges(transforms_.size());
  const size_t s = static_cast<size_t>(
      transforms_.size() == 0 ? 0 : transforms_[0].config().output_dims);
  std::vector<double> workspace;
  for (size_t i = 0; i < transforms_.size(); ++i) {
    const RandomizedTransform& transform = transforms_[i];
    ranges[i].resize(count);
    if (config_.interval_decomposition) {
      // One transform pass over the whole batch, then per-point cell boxes
      // from the shared transformed coordinates.
      workspace.resize(count * s);
      transform.ApplyBatch(points, count, workspace.data());
      std::vector<uint32_t> lo, hi;
      for (size_t p = 0; p < count; ++p) {
        transform.CellBoxFromTransformed(workspace.data() + p * s,
                                         config_.radius, &lo, &hi);
        ranges[i][p] =
            transform.curve().DecomposeBox(lo, hi, config_.max_z_intervals);
      }
    } else {
      // The paper's single range per point; the half-width depends only on
      // the transform and the radius, so it is computed once per batch.
      workspace.resize(count);
      transform.LinearizedPositionBatch(points, count, workspace.data());
      const double cell_z = std::ldexp(1.0, -transform.curve().total_bits());
      const double delta = std::max(
          transform.RangeHalfWidth(config_.radius), 0.5 * cell_z);
      for (size_t p = 0; p < count; ++p) {
        ranges[i][p] = {SlideClampInterval(workspace[p], delta)};
      }
    }
  }
  return ranges;
}

Prediction LshHistogramsPredictor::Predict(
    const std::vector<double>& x) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return PredictLocked(x);
}

Prediction LshHistogramsPredictor::PredictLocked(
    const std::vector<double>& x) const {
  if (synopses_.empty()) return Prediction{};
  const std::vector<std::vector<ZInterval>> ranges = QueryRanges(x);

  // Noise elimination (Sec. IV-C): a fixed fraction of all samples is
  // assumed to be Z-order false positives and excluded from every plan's
  // density.
  const double noise_floor =
      config_.noise_fraction > 0.0
          ? config_.noise_fraction * static_cast<double>(total_samples_)
          : 0.0;

  double total = 0.0;
  PlanId max_plan = kNullPlanId;
  double max_count = 0.0;
  for (const auto& [plan, synopsis] : synopses_) {
    const double raw = synopsis.MedianCount(ranges);
    const double count = std::max(0.0, raw - noise_floor);
    total += count;
    if (count > max_count) {
      max_count = count;
      max_plan = plan;
    }
  }
  if (max_count <= 0.0) return Prediction{};

  const double confidence = ConfidenceFromCounts(max_count, total - max_count);
  if (confidence <= config_.confidence_threshold) return Prediction{};

  Prediction out;
  out.plan = max_plan;
  out.confidence = confidence;
  out.estimated_cost = synopses_.at(max_plan).MedianAverageCost(ranges);
  return out;
}

std::vector<Prediction> LshHistogramsPredictor::PredictBatch(
    const double* points, size_t count) const {
  std::vector<Prediction> out(count);
  PredictBatchInto(points, count, out.data());
  return out;
}

void LshHistogramsPredictor::PredictBatchInto(const double* points,
                                              size_t count,
                                              Prediction* out) const {
  std::fill(out, out + count, Prediction{});
  if (count == 0) return;
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (synopses_.empty()) return;

  PredictScratch& scratch = ThreadScratch();
  Arena& arena = scratch.arena;
  arena.Reset();

  const size_t t = transforms_.size();
  const size_t s =
      static_cast<size_t>(transforms_[0].config().output_dims);

  // Build the flat transform-major query ranges — the fast-path analogue
  // of QueryRangesBatch without its per-slot vector allocations.
  FlatQueryRanges ranges;
  ranges.transform_count = t;
  ranges.point_count = count;
  if (!config_.interval_decomposition) {
    // The paper's single range per point: one interval per slot, offsets
    // implicit.
    scratch.intervals.clear();
    scratch.intervals.resize(t * count);
    double* positions = arena.Array<double>(count);
    double* transformed = arena.Array<double>(count * s);
    uint32_t* cell = arena.Array<uint32_t>(s);
    for (size_t i = 0; i < t; ++i) {
      const RandomizedTransform& transform = transforms_[i];
      transform.LinearizedPositionBatch(points, count, positions,
                                        transformed, cell);
      // The half-width depends only on the transform and the radius, so
      // it is computed once per batch.
      const double cell_z = std::ldexp(1.0, -transform.curve().total_bits());
      const double delta = std::max(
          transform.RangeHalfWidth(config_.radius), 0.5 * cell_z);
      for (size_t p = 0; p < count; ++p) {
        scratch.intervals[i * count + p] =
            SlideClampInterval(positions[p], delta);
      }
    }
    ranges.intervals = scratch.intervals.data();
    ranges.offsets = nullptr;
  } else {
    // Exact Z-range decomposition: variable intervals per slot, explicit
    // offsets. DecomposeBox allocates its result vector, so this mode
    // does not meet the zero-allocation contract (it is the opt-in
    // precision extension, not the serving default).
    scratch.intervals.clear();
    scratch.offsets.clear();
    scratch.offsets.push_back(0);
    double* transformed = arena.Array<double>(count * s);
    for (size_t i = 0; i < t; ++i) {
      const RandomizedTransform& transform = transforms_[i];
      transform.ApplyBatch(points, count, transformed);
      for (size_t p = 0; p < count; ++p) {
        transform.CellBoxFromTransformed(transformed + p * s, config_.radius,
                                         &scratch.cell_lo, &scratch.cell_hi);
        const std::vector<ZInterval> decomposed = transform.curve().DecomposeBox(
            scratch.cell_lo, scratch.cell_hi, config_.max_z_intervals);
        scratch.intervals.insert(scratch.intervals.end(), decomposed.begin(),
                                 decomposed.end());
        scratch.offsets.push_back(
            static_cast<uint32_t>(scratch.intervals.size()));
      }
    }
    ranges.intervals = scratch.intervals.data();
    ranges.offsets = scratch.offsets.data();
  }

  const double noise_floor =
      config_.noise_fraction > 0.0
          ? config_.noise_fraction * static_cast<double>(total_samples_)
          : 0.0;

  // Running per-point argmax state, updated plan by plan in the same
  // std::map order as the scalar path (ties must resolve identically).
  double* totals = arena.Array<double>(count);
  double* max_counts = arena.Array<double>(count);
  PlanId* max_plans = arena.Array<PlanId>(count);
  std::fill(totals, totals + count, 0.0);
  std::fill(max_counts, max_counts + count, 0.0);
  std::fill(max_plans, max_plans + count, kNullPlanId);
  double* per_transform = arena.Array<double>(t * count);
  double* median_scratch = arena.Array<double>(t);
  double* probe_scratch = arena.Array<double>(4 * config_.histogram_buckets);
  for (const auto& [plan, synopsis] : synopses_) {
    // All of this plan's histograms are walked batch-at-a-time: probe
    // tables and bucket arrays stay cache-hot across the count points of
    // each transform.
    synopsis.BatchTransformCounts(ranges, per_transform, probe_scratch);
    for (size_t p = 0; p < count; ++p) {
      // Assemble the per-transform counts in transform order — the same
      // sequence the scalar MedianCount builds — and take the median.
      for (size_t i = 0; i < t; ++i) {
        median_scratch[i] = per_transform[i * count + p];
      }
      const double raw = MedianInPlace(median_scratch, t);
      const double density = std::max(0.0, raw - noise_floor);
      totals[p] += density;
      if (density > max_counts[p]) {
        max_counts[p] = density;
        max_plans[p] = plan;
      }
    }
  }

  // `answered` marks points that cleared the confidence gate; matching on
  // out[p].plan alone would misfire if a synopsis were keyed kNullPlanId
  // (Insert does not forbid it), since abstained points carry that id.
  bool* answered = arena.Array<bool>(count);
  std::fill(answered, answered + count, false);
  for (size_t p = 0; p < count; ++p) {
    if (max_counts[p] <= 0.0) continue;
    const double confidence =
        ConfidenceFromCounts(max_counts[p], totals[p] - max_counts[p]);
    if (confidence <= config_.confidence_threshold) continue;
    out[p].plan = max_plans[p];
    out[p].confidence = confidence;
    answered[p] = true;
  }

  // Cost estimation runs only for the winning plan of a confident point,
  // exactly as in the scalar path — but grouped by plan so each winning
  // synopsis exports its count+cost probe tables once per batch instead
  // of recomputing bucket extents per (point, bucket, estimate), and (in
  // single-range mode) the grouped points run through one across-queries
  // kernel call per transform.
  const size_t stride = config_.histogram_buckets;
  double* cost_probes = arena.Array<double>(5 * t * stride);
  uint32_t* group_idx = arena.Array<uint32_t>(count);
  double* bounds_ws = arena.Array<double>(2 * count);
  double* counts_ws = arena.Array<double>(t * count);
  double* costs_ws = arena.Array<double>(t * count);
  double* group_costs = arena.Array<double>(count);
  for (const auto& [plan, synopsis] : synopses_) {
    size_t group = 0;
    for (size_t p = 0; p < count; ++p) {
      if (answered[p] && max_plans[p] == plan) {
        group_idx[group++] = static_cast<uint32_t>(p);
      }
    }
    if (group == 0) continue;
    synopsis.ExportCostProbes(stride, cost_probes);
    if (ranges.offsets == nullptr) {
      synopsis.BatchAverageCostsFromProbes(ranges, group_idx, group, stride,
                                           cost_probes, bounds_ws, counts_ws,
                                           costs_ws, median_scratch,
                                           group_costs);
      for (size_t k = 0; k < group; ++k) {
        out[group_idx[k]].estimated_cost = group_costs[k];
      }
    } else {
      for (size_t k = 0; k < group; ++k) {
        out[group_idx[k]].estimated_cost =
            synopsis.MedianAverageCostFromProbes(ranges, group_idx[k], stride,
                                                 cost_probes, median_scratch);
      }
    }
  }
}

double LshHistogramsPredictor::EstimateCost(const std::vector<double>& x,
                                            PlanId plan) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = synopses_.find(plan);
  if (it == synopses_.end()) return 0.0;
  return it->second.MedianAverageCost(QueryRanges(x));
}

uint64_t LshHistogramsPredictor::SpaceBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [plan, synopsis] : synopses_) {
    total += synopsis.SpaceBytes();
  }
  return total;
}

void LshHistogramsPredictor::Reset() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  synopses_.clear();
  total_samples_ = 0;
}

namespace {

/// Snapshot container format v2: the unversioned v1 layout (magic
/// 0x50504331 followed immediately by raw config fields) is rejected so a
/// layout change can never misparse an old blob as the new one. v2 wraps
/// the payload in an envelope — magic, format version, length-prefixed
/// config and data sections, and a trailing FNV-1a checksum over every
/// preceding byte — validated outside-in before any field is interpreted.
constexpr uint32_t kLegacySnapshotMagic = 0x50504331;  // "PPC1"
constexpr uint32_t kSnapshotMagic = 0x50504353;        // "PPCS"
// v3 appends the transform generation and the fitted per-dimension input
// ranges to the config section (adaptive retuning, DESIGN.md §17). v2
// blobs predate transform generations and are rejected as unsupported
// rather than silently adopted as generation 0 with unknown ranges.
constexpr uint32_t kSnapshotVersion = 3;
constexpr size_t kSnapshotChecksumBytes = sizeof(uint64_t);

}  // namespace

std::string LshHistogramsPredictor::Serialize() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  ByteWriter config_section;
  config_section.PutU32(static_cast<uint32_t>(config_.dimensions));
  config_section.PutU32(static_cast<uint32_t>(config_.transform_count));
  config_section.PutU32(static_cast<uint32_t>(config_.output_dims));
  config_section.PutU32(static_cast<uint32_t>(config_.bits_per_dim));
  config_section.PutU64(config_.histogram_buckets);
  config_section.PutDouble(config_.radius);
  config_section.PutDouble(config_.confidence_threshold);
  config_section.PutDouble(config_.noise_fraction);
  config_section.PutU8(static_cast<uint8_t>(config_.merge_policy));
  config_section.PutU64(config_.seed);
  config_section.PutU8(config_.interval_decomposition ? 1 : 0);
  config_section.PutU64(config_.max_z_intervals);
  config_section.PutU32(config_.transform_generation);
  config_section.PutU32(static_cast<uint32_t>(config_.input_lo.size()));
  for (size_t i = 0; i < config_.input_lo.size(); ++i) {
    config_section.PutDouble(config_.input_lo[i]);
    config_section.PutDouble(config_.input_hi[i]);
  }

  ByteWriter data_section;
  data_section.PutU64(total_samples_);
  data_section.PutU32(static_cast<uint32_t>(synopses_.size()));
  for (const auto& [plan, synopsis] : synopses_) {
    data_section.PutU64(plan);
    synopsis.SerializeTo(&data_section);
  }

  ByteWriter writer;
  writer.PutU32(kSnapshotMagic);
  writer.PutU32(kSnapshotVersion);
  // PutString's u32 length prefix doubles as the per-section length.
  writer.PutString(config_section.buffer());
  writer.PutString(data_section.buffer());
  writer.PutU64(Fnv1a64(writer.buffer()));
  return writer.Take();
}

Result<LshHistogramsPredictor> LshHistogramsPredictor::Restore(
    const std::string& bytes) {
  // Envelope validation, outside-in. Every failure here is
  // InvalidArgument: a snapshot that cannot be structurally trusted must
  // never surface as a partial parse or an abort.
  constexpr size_t kEnvelopeBytes =
      4 /* magic */ + 4 /* version */ + 4 + 4 /* section lengths */ +
      kSnapshotChecksumBytes;
  if (bytes.size() < kEnvelopeBytes) {
    return Status::InvalidArgument("snapshot shorter than its envelope");
  }
  ByteReader reader(bytes);
  PPC_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic == kLegacySnapshotMagic) {
    return Status::InvalidArgument(
        "unversioned v1 predictor snapshot is no longer supported");
  }
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a predictor snapshot");
  }
  PPC_ASSIGN_OR_RETURN(uint32_t version, reader.GetU32());
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot format version " +
                                   std::to_string(version));
  }
  // The trailing checksum covers every byte before it, so truncation,
  // bit flips, and corrupted section lengths all fail right here with
  // one error instead of whatever the damaged bytes happen to parse as.
  const uint64_t stored_checksum = [&] {
    uint64_t v;
    std::memcpy(&v, bytes.data() + bytes.size() - kSnapshotChecksumBytes,
                kSnapshotChecksumBytes);
    return v;
  }();
  const uint64_t computed_checksum = Fnv1a64(std::string_view(bytes).substr(
      0, bytes.size() - kSnapshotChecksumBytes));
  if (stored_checksum != computed_checksum) {
    return Status::InvalidArgument(
        "snapshot checksum mismatch (truncated or corrupted)");
  }
  auto sections = [&]() -> Result<LshHistogramsPredictor> {
    PPC_ASSIGN_OR_RETURN(std::string config_bytes, reader.GetString());
    PPC_ASSIGN_OR_RETURN(std::string data_bytes, reader.GetString());
    PPC_ASSIGN_OR_RETURN(uint64_t checksum, reader.GetU64());
    (void)checksum;  // verified above
    if (!reader.AtEnd()) {
      return Status::InvalidArgument("trailing bytes after snapshot");
    }
    return RestoreParsed(config_bytes, data_bytes);
  }();
  if (!sections.ok() && sections.status().code() == StatusCode::kOutOfRange) {
    // A checksum-consistent blob whose internal lengths still disagree
    // (the checksum was recomputed over corrupted sections) is malformed
    // input, not a caller range error.
    return Status::InvalidArgument(sections.status().message());
  }
  return sections;
}

Result<LshHistogramsPredictor> LshHistogramsPredictor::RestoreParsed(
    const std::string& config_bytes, const std::string& data_bytes) {
  ByteReader reader(config_bytes);
  Config config;
  PPC_ASSIGN_OR_RETURN(uint32_t dimensions, reader.GetU32());
  PPC_ASSIGN_OR_RETURN(uint32_t transform_count, reader.GetU32());
  PPC_ASSIGN_OR_RETURN(uint32_t output_dims, reader.GetU32());
  PPC_ASSIGN_OR_RETURN(uint32_t bits_per_dim, reader.GetU32());
  config.dimensions = static_cast<int>(dimensions);
  config.transform_count = static_cast<int>(transform_count);
  config.output_dims = static_cast<int>(output_dims);
  config.bits_per_dim = static_cast<int>(bits_per_dim);
  PPC_ASSIGN_OR_RETURN(config.histogram_buckets, reader.GetU64());
  PPC_ASSIGN_OR_RETURN(config.radius, reader.GetDouble());
  PPC_ASSIGN_OR_RETURN(config.confidence_threshold, reader.GetDouble());
  PPC_ASSIGN_OR_RETURN(config.noise_fraction, reader.GetDouble());
  PPC_ASSIGN_OR_RETURN(uint8_t policy_byte, reader.GetU8());
  if (policy_byte >
      static_cast<uint8_t>(StreamingHistogram::MergePolicy::kEquiWidth)) {
    return Status::InvalidArgument("unknown merge policy in snapshot");
  }
  config.merge_policy =
      static_cast<StreamingHistogram::MergePolicy>(policy_byte);
  PPC_ASSIGN_OR_RETURN(config.seed, reader.GetU64());
  PPC_ASSIGN_OR_RETURN(uint8_t decomposition_byte, reader.GetU8());
  config.interval_decomposition = decomposition_byte != 0;
  PPC_ASSIGN_OR_RETURN(config.max_z_intervals, reader.GetU64());
  PPC_ASSIGN_OR_RETURN(config.transform_generation, reader.GetU32());
  PPC_ASSIGN_OR_RETURN(uint32_t range_count, reader.GetU32());
  if (range_count != 0 && range_count != dimensions) {
    return Status::InvalidArgument(
        "snapshot input-range count mismatches dimensions");
  }
  config.input_lo.reserve(range_count);
  config.input_hi.reserve(range_count);
  for (uint32_t i = 0; i < range_count; ++i) {
    double lo, hi;
    PPC_ASSIGN_OR_RETURN(lo, reader.GetDouble());
    PPC_ASSIGN_OR_RETURN(hi, reader.GetDouble());
    // A fitted range must be a finite, non-degenerate interval: the
    // normalization divides by (hi - lo) inside the transform fold and a
    // bad span would otherwise trip a PPC_CHECK abort downstream.
    if (!std::isfinite(lo) || !std::isfinite(hi) || !(hi > lo)) {
      return Status::InvalidArgument(
          "snapshot input range is degenerate or non-finite");
    }
    config.input_lo.push_back(lo);
    config.input_hi.push_back(hi);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "snapshot config section has trailing bytes");
  }

  // Validate the full configuration before constructing anything: a
  // malformed snapshot must fail as InvalidArgument here, not trip
  // PPC_CHECK aborts inside ZOrderCurve / StreamingHistogram downstream.
  // Bounds derive from the substrate: a Z-order curve holds at most 62
  // bits, histograms need >= 2 buckets, and the raw u32 fields must not
  // wrap negative when cast to int.
  constexpr uint64_t kMaxSaneCount = uint64_t{1} << 20;
  if (dimensions == 0 || dimensions > 62 ||
      transform_count == 0 || transform_count > 4096 ||
      output_dims > 62 ||
      bits_per_dim == 0 || bits_per_dim > 62 ||
      config.histogram_buckets < 2 ||
      config.histogram_buckets > kMaxSaneCount ||
      config.max_z_intervals < 1 ||
      config.max_z_intervals > kMaxSaneCount) {
    return Status::InvalidArgument(
        "snapshot predictor configuration out of range");
  }
  const uint64_t effective_dims =
      output_dims > 0
          ? output_dims
          : static_cast<uint64_t>(DefaultOutputDims(config.dimensions));
  if (effective_dims * bits_per_dim > 62) {
    return Status::InvalidArgument(
        "snapshot Z-order resolution exceeds 62 bits");
  }

  LshHistogramsPredictor predictor(config);
  ByteReader data_reader(data_bytes);
  PPC_ASSIGN_OR_RETURN(predictor.total_samples_, data_reader.GetU64());
  PPC_ASSIGN_OR_RETURN(uint32_t plan_count, data_reader.GetU32());
  for (uint32_t i = 0; i < plan_count; ++i) {
    PPC_ASSIGN_OR_RETURN(uint64_t plan, data_reader.GetU64());
    PPC_ASSIGN_OR_RETURN(PlanSynopsis synopsis,
                         PlanSynopsis::Deserialize(&data_reader));
    if (synopsis.transform_count() != predictor.transforms_.size()) {
      return Status::InvalidArgument(
          "synopsis transform count mismatches configuration");
    }
    predictor.synopses_.emplace(plan, std::move(synopsis));
  }
  if (!data_reader.AtEnd()) {
    return Status::InvalidArgument(
        "snapshot data section has trailing bytes");
  }
  return predictor;
}

Status LshHistogramsPredictor::AdoptState(
    const LshHistogramsPredictor& snapshot) {
  const Config& a = config_;
  const Config& b = snapshot.config_;
  // Generation first, with a dedicated error: adopting histograms built
  // under a different transform generation is the cross-generation mixing
  // the warm handoff must prevent (a refit draws new transforms, so the
  // incoming Z-order positions are meaningless here even when every other
  // config field matches).
  if (a.transform_generation != b.transform_generation) {
    return Status::InvalidArgument(
        "snapshot transform generation " +
        std::to_string(b.transform_generation) +
        " differs from local generation " +
        std::to_string(a.transform_generation));
  }
  // The transforms are a pure function of (config, seed); any mismatch
  // means the incoming histograms were built over different intermediate
  // spaces and would answer garbage here.
  if (a.dimensions != b.dimensions ||
      a.transform_count != b.transform_count ||
      a.output_dims != b.output_dims || a.bits_per_dim != b.bits_per_dim ||
      a.histogram_buckets != b.histogram_buckets || a.radius != b.radius ||
      a.confidence_threshold != b.confidence_threshold ||
      a.noise_fraction != b.noise_fraction ||
      a.interval_decomposition != b.interval_decomposition ||
      a.max_z_intervals != b.max_z_intervals ||
      a.merge_policy != b.merge_policy || a.seed != b.seed ||
      a.input_lo != b.input_lo || a.input_hi != b.input_hi) {
    return Status::InvalidArgument(
        "snapshot predictor configuration differs from local configuration");
  }
  // Copy out of the snapshot under its read lock, then swap in under our
  // write lock. Not intended for two live predictors adopting each other
  // concurrently (warm-start sources are freshly restored locals).
  std::map<PlanId, PlanSynopsis> synopses;
  size_t total_samples;
  {
    std::shared_lock<std::shared_mutex> source_lock(snapshot.mu_);
    synopses = snapshot.synopses_;
    total_samples = snapshot.total_samples_;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  synopses_ = std::move(synopses);
  total_samples_ = total_samples;
  return Status::OK();
}

}  // namespace ppc
