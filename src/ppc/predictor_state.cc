#include "ppc/predictor_state.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "common/bytes.h"
#include "common/hash.h"
#include "ppc/lsh_histograms_predictor.h"
#include "ppc/ppc_framework.h"

namespace ppc {

namespace {

/// Replication container format v2. Same envelope discipline as the
/// predictor snapshot (magic | version | payload | trailing FNV-1a
/// checksum), with a distinct magic so the two blob kinds can never be
/// confused for each other on the wire. v2 added the per-entry transform
/// generation; v1 blobs (no generation field) are rejected rather than
/// guessed at — silently adopting them as generation 0 is exactly the
/// cross-generation mixing the field exists to prevent.
constexpr uint32_t kStateMagic = 0x50504352;  // "PPCR"
constexpr uint32_t kStateVersion = 2;
constexpr size_t kChecksumBytes = sizeof(uint64_t);
/// An adversarial count field must not drive allocation; real
/// deployments register a handful of templates.
constexpr uint32_t kMaxTemplates = 4096;

}  // namespace

PredictorState PredictorState::Capture(const PpcFramework& framework) {
  PredictorState state;
  state.sequence_ = framework.NextSnapshotSequence();
  for (const std::string& name : framework.TemplateNames()) {
    const std::shared_ptr<const OnlinePpcPredictor> online =
        framework.online_predictor(name);
    if (online == nullptr) continue;  // unregistered between the two reads
    TemplateEntry entry;
    entry.name = name;
    entry.generation = online->predictor().transform_generation();
    entry.blob = online->predictor().Serialize();
    entry.content_hash = Fnv1a64(entry.blob);
    state.entries_.push_back(std::move(entry));
  }
  return state;
}

std::string PredictorState::SerializeEntries(
    const std::vector<TemplateEntry>& entries, bool is_delta) const {
  ByteWriter writer;
  writer.PutU32(kStateMagic);
  writer.PutU32(kStateVersion);
  writer.PutU8(is_delta ? 1 : 0);
  writer.PutU64(sequence_);
  writer.PutU32(static_cast<uint32_t>(entries.size()));
  for (const TemplateEntry& entry : entries) {
    writer.PutString(entry.name);
    writer.PutU32(entry.generation);
    writer.PutU64(entry.content_hash);
    writer.PutString(entry.blob);
  }
  writer.PutU64(Fnv1a64(writer.buffer()));
  return writer.Take();
}

std::string PredictorState::Serialize() const {
  return SerializeEntries(entries_, /*is_delta=*/false);
}

std::string PredictorState::SerializeDelta(const PredictorState& base) const {
  std::vector<TemplateEntry> changed;
  for (const TemplateEntry& entry : entries_) {
    const auto it = std::find_if(
        base.entries_.begin(), base.entries_.end(),
        [&](const TemplateEntry& b) { return b.name == entry.name; });
    if (it == base.entries_.end() || it->content_hash != entry.content_hash) {
      changed.push_back(entry);
    }
  }
  return SerializeEntries(changed, /*is_delta=*/true);
}

PredictorState PredictorState::Filtered(
    const std::function<bool(const TemplateEntry&)>& keep) const {
  PredictorState subset;
  subset.sequence_ = sequence_;
  for (const TemplateEntry& entry : entries_) {
    if (keep(entry)) subset.entries_.push_back(entry);
  }
  return subset;
}

namespace {

/// Envelope + payload parse shared by Restore and RestoreDelta; returns
/// the parsed fields without merge semantics.
struct ParsedState {
  bool is_delta = false;
  uint64_t sequence = 0;
  std::vector<PredictorState::TemplateEntry> entries;
};

Result<ParsedState> ParseState(const std::string& bytes) {
  constexpr size_t kEnvelopeBytes =
      4 /* magic */ + 4 /* version */ + 1 /* is_delta */ + 8 /* sequence */ +
      4 /* count */ + kChecksumBytes;
  if (bytes.size() < kEnvelopeBytes) {
    return Status::InvalidArgument("state snapshot shorter than its envelope");
  }
  ByteReader reader(bytes);
  PPC_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kStateMagic) {
    return Status::InvalidArgument("not a predictor-state snapshot");
  }
  PPC_ASSIGN_OR_RETURN(uint32_t version, reader.GetU32());
  if (version != kStateVersion) {
    return Status::InvalidArgument(
        "unsupported predictor-state snapshot version " +
        std::to_string(version));
  }
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, bytes.data() + bytes.size() - kChecksumBytes,
              kChecksumBytes);
  if (stored_checksum != Fnv1a64(std::string_view(bytes).substr(
                             0, bytes.size() - kChecksumBytes))) {
    return Status::InvalidArgument(
        "state snapshot checksum mismatch (truncated or corrupted)");
  }
  auto parse = [&]() -> Result<ParsedState> {
    ParsedState parsed;
    PPC_ASSIGN_OR_RETURN(uint8_t delta_byte, reader.GetU8());
    if (delta_byte > 1) {
      return Status::InvalidArgument("state snapshot delta flag out of range");
    }
    parsed.is_delta = delta_byte != 0;
    PPC_ASSIGN_OR_RETURN(parsed.sequence, reader.GetU64());
    PPC_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
    if (count > kMaxTemplates) {
      return Status::InvalidArgument("state snapshot template count " +
                                     std::to_string(count) + " exceeds limit");
    }
    parsed.entries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      PredictorState::TemplateEntry entry;
      PPC_ASSIGN_OR_RETURN(entry.name, reader.GetString());
      PPC_ASSIGN_OR_RETURN(entry.generation, reader.GetU32());
      PPC_ASSIGN_OR_RETURN(entry.content_hash, reader.GetU64());
      PPC_ASSIGN_OR_RETURN(entry.blob, reader.GetString());
      if (entry.content_hash != Fnv1a64(entry.blob)) {
        return Status::InvalidArgument("template '" + entry.name +
                                       "' content hash mismatch");
      }
      if (!parsed.entries.empty() && entry.name <= parsed.entries.back().name) {
        return Status::InvalidArgument(
            "state snapshot template names not strictly increasing");
      }
      parsed.entries.push_back(std::move(entry));
    }
    PPC_ASSIGN_OR_RETURN(uint64_t checksum, reader.GetU64());
    (void)checksum;  // verified above
    if (!reader.AtEnd()) {
      return Status::InvalidArgument("trailing bytes after state snapshot");
    }
    return parsed;
  }();
  if (!parse.ok() && parse.status().code() == StatusCode::kOutOfRange) {
    // Checksum-consistent but internally inconsistent lengths: malformed
    // input, not a caller range error.
    return Status::InvalidArgument(parse.status().message());
  }
  return parse;
}

}  // namespace

Result<PredictorState> PredictorState::Restore(const std::string& bytes) {
  PPC_ASSIGN_OR_RETURN(ParsedState parsed, ParseState(bytes));
  if (parsed.is_delta) {
    return Status::InvalidArgument(
        "delta state snapshot requires a base (use RestoreDelta)");
  }
  PredictorState state;
  state.sequence_ = parsed.sequence;
  state.entries_ = std::move(parsed.entries);
  return state;
}

Result<PredictorState> PredictorState::RestoreDelta(
    const std::string& bytes, const PredictorState& base) {
  PPC_ASSIGN_OR_RETURN(ParsedState parsed, ParseState(bytes));
  if (!parsed.is_delta) {
    return Status::InvalidArgument(
        "full state snapshot passed where a delta was expected");
  }
  PredictorState merged;
  merged.sequence_ = parsed.sequence;
  merged.entries_ = base.entries_;
  for (auto& entry : parsed.entries) {
    const auto it = std::find_if(
        merged.entries_.begin(), merged.entries_.end(),
        [&](const TemplateEntry& e) { return e.name == entry.name; });
    if (it != merged.entries_.end()) {
      *it = std::move(entry);
    } else {
      merged.entries_.push_back(std::move(entry));
    }
  }
  std::sort(merged.entries_.begin(), merged.entries_.end(),
            [](const TemplateEntry& a, const TemplateEntry& b) {
              return a.name < b.name;
            });
  return merged;
}

Result<PredictorState::ApplyReport> PredictorState::ApplyTo(
    PpcFramework* framework) const {
  ApplyReport report;
  for (const TemplateEntry& entry : entries_) {
    const std::shared_ptr<OnlinePpcPredictor> online =
        framework->mutable_online_predictor(entry.name);
    if (online == nullptr) {
      ++report.templates_skipped;
      continue;
    }
    PPC_ASSIGN_OR_RETURN(LshHistogramsPredictor restored,
                         LshHistogramsPredictor::Restore(entry.blob));
    // The container-level generation and the one embedded in the blob
    // must agree; a mismatch means the envelope was stitched together
    // from pieces of different captures.
    if (restored.transform_generation() != entry.generation) {
      return Status::InvalidArgument(
          "template '" + entry.name + "' entry generation " +
          std::to_string(entry.generation) + " disagrees with blob generation " +
          std::to_string(restored.transform_generation()));
    }
    const uint32_t local_generation =
        online->predictor().transform_generation();
    if (entry.generation == local_generation) {
      // Same transform generation: adopt the leader's densities in place
      // (AdoptState re-checks the full config equality, including the
      // fitted input ranges).
      PPC_RETURN_NOT_OK(online->WarmStart(restored));
    } else if (entry.generation > local_generation) {
      // The leader refit past us: follow it through the same warm
      // handoff the local retune worker uses, so replicas never serve a
      // mixed-generation predictor.
      OnlinePpcPredictor::Config online_config = online->config();
      online_config.predictor = restored.config();
      auto next = std::make_shared<OnlinePpcPredictor>(std::move(online_config),
                                                       std::move(restored));
      next->InheritLifetimeCounters(*online);
      PPC_RETURN_NOT_OK(
          framework->InstallPredictorGeneration(entry.name, std::move(next)));
      ++report.generations_installed;
    } else {
      // Never roll a serving predictor back to an older transform
      // generation: its histograms were built in a different projected
      // space and would silently mis-serve.
      return Status::InvalidArgument(
          "template '" + entry.name + "' snapshot generation " +
          std::to_string(entry.generation) +
          " is stale (local serving generation " +
          std::to_string(local_generation) + ")");
    }
    ++report.templates_applied;
  }
  return report;
}

uint64_t PredictorState::ContentHash() const {
  ByteWriter writer;
  for (const TemplateEntry& entry : entries_) {
    writer.PutString(entry.name);
    writer.PutU64(entry.content_hash);
  }
  return Fnv1a64(writer.buffer());
}

}  // namespace ppc
