#include "ppc/runtime_simulator.h"

#include <chrono>
#include <memory>

#include "common/rng.h"
#include "exec/execution_simulator.h"
#include "optimizer/optimizer.h"
#include "optimizer/robust_plan.h"
#include "ppc/plan_cache.h"
#include "workload/workload_generator.h"

namespace ppc {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* CachingStrategyName(CachingStrategy strategy) {
  switch (strategy) {
    case CachingStrategy::kAlwaysOptimize:
      return "ALWAYS-OPTIMIZE";
    case CachingStrategy::kConventionalCache:
      return "CONVENTIONAL-CACHE";
    case CachingStrategy::kRobustCache:
      return "ROBUST-PLAN-CACHE";
    case CachingStrategy::kParametricCache:
      return "ONLINE-LSH-HISTOGRAMS";
    case CachingStrategy::kIdeal:
      return "IDEAL";
  }
  return "UNKNOWN";
}

RuntimeSimulator::RuntimeSimulator(const Catalog* catalog, QueryTemplate tmpl,
                                   Options options)
    : catalog_(catalog), tmpl_(std::move(tmpl)), options_(options) {
  PPC_CHECK(catalog != nullptr);
}

Result<RuntimeSimResult> RuntimeSimulator::Run(
    CachingStrategy strategy,
    const std::vector<std::vector<double>>& workload) const {
  Optimizer optimizer(catalog_);
  PPC_ASSIGN_OR_RETURN(PreparedTemplate prep, optimizer.Prepare(tmpl_));
  ExecutionSimulator simulator(&optimizer.cost_model(),
                               ExecutionSimulator::Options{0.0, options_.seed});

  RuntimeSimResult result;
  result.strategy = strategy;
  result.queries = workload.size();

  // Strategy state.
  std::unique_ptr<PlanNode> conventional_plan;
  OnlinePpcPredictor::Config online_config = options_.online;
  online_config.predictor.dimensions = tmpl_.ParameterDegree();
  OnlinePpcPredictor online(online_config);
  PlanCache cache(options_.plan_cache_capacity, options_.cache_policy);

  for (const std::vector<double>& point : workload) {
    switch (strategy) {
      case CachingStrategy::kAlwaysOptimize: {
        auto start = Clock::now();
        PPC_ASSIGN_OR_RETURN(OptimizationResult opt,
                             optimizer.Optimize(prep, point));
        result.optimize_seconds += SecondsSince(start);
        ++result.optimizer_calls;
        PPC_ASSIGN_OR_RETURN(double cost,
                             simulator.Execute(prep, *opt.plan, point));
        result.execute_seconds += cost * options_.cost_to_seconds;
        result.suboptimality_sum += 1.0;
        break;
      }

      case CachingStrategy::kRobustCache:
      case CachingStrategy::kConventionalCache: {
        if (conventional_plan == nullptr) {
          auto start = Clock::now();
          if (strategy == CachingStrategy::kRobustCache) {
            Rng sample_rng(options_.seed ^ 0x9e37);
            auto samples = UniformPlanSpaceSample(
                tmpl_.ParameterDegree(), options_.robust_sample_count,
                &sample_rng);
            PPC_ASSIGN_OR_RETURN(RobustPlanResult robust,
                                 SelectRobustPlan(optimizer, prep, samples));
            result.optimizer_calls += robust.optimizer_calls;
            conventional_plan = std::move(robust.plan);
          } else {
            PPC_ASSIGN_OR_RETURN(OptimizationResult opt,
                                 optimizer.Optimize(prep, point));
            ++result.optimizer_calls;
            conventional_plan = std::move(opt.plan);
          }
          result.optimize_seconds += SecondsSince(start);
        }
        PPC_ASSIGN_OR_RETURN(
            double cost, simulator.Execute(prep, *conventional_plan, point));
        PPC_ASSIGN_OR_RETURN(OptimizationResult best,
                             optimizer.Optimize(prep, point));
        // The extra Optimize above is measurement-only (to know the
        // optimal cost for suboptimality accounting); it is not charged.
        PPC_ASSIGN_OR_RETURN(double best_cost,
                             simulator.Execute(prep, *best.plan, point));
        result.execute_seconds += cost * options_.cost_to_seconds;
        result.suboptimality_sum +=
            best_cost > 0.0 ? cost / best_cost : 1.0;
        break;
      }

      case CachingStrategy::kParametricCache: {
        auto predict_start = Clock::now();
        OnlinePpcPredictor::Decision decision = online.Decide(point);
        std::shared_ptr<const PlanNode> cached;
        if (decision.use_prediction) {
          cached = cache.Get(decision.prediction.plan);
        }
        result.predict_seconds += SecondsSince(predict_start);

        if (decision.use_prediction && cached != nullptr) {
          ++result.predictions_used;
          PPC_ASSIGN_OR_RETURN(double cost,
                               simulator.Execute(prep, *cached, point));
          result.execute_seconds += cost * options_.cost_to_seconds;

          auto feedback_start = Clock::now();
          const bool suspected = online.ReportPredictionExecuted(
              point, decision.prediction, cost);
          result.predict_seconds += SecondsSince(feedback_start);
          if (suspected) {
            auto start = Clock::now();
            PPC_ASSIGN_OR_RETURN(OptimizationResult opt,
                                 optimizer.Optimize(prep, point));
            result.optimize_seconds += SecondsSince(start);
            ++result.optimizer_calls;
            PPC_ASSIGN_OR_RETURN(double true_cost,
                                 simulator.Execute(prep, *opt.plan, point));
            online.ObserveOptimized(
                LabeledPoint{point, opt.plan_id, true_cost});
            cache.Put(opt.plan_id, std::move(opt.plan));
          }
          // Suboptimality accounting (measurement-only, not charged).
          PPC_ASSIGN_OR_RETURN(OptimizationResult best,
                               optimizer.Optimize(prep, point));
          PPC_ASSIGN_OR_RETURN(double best_cost,
                               simulator.Execute(prep, *best.plan, point));
          result.suboptimality_sum +=
              best_cost > 0.0 ? cost / best_cost : 1.0;
        } else {
          auto start = Clock::now();
          PPC_ASSIGN_OR_RETURN(OptimizationResult opt,
                               optimizer.Optimize(prep, point));
          result.optimize_seconds += SecondsSince(start);
          ++result.optimizer_calls;
          PPC_ASSIGN_OR_RETURN(double cost,
                               simulator.Execute(prep, *opt.plan, point));
          result.execute_seconds += cost * options_.cost_to_seconds;
          result.suboptimality_sum += 1.0;
          online.ObserveOptimized(LabeledPoint{point, opt.plan_id, cost});
          cache.Put(opt.plan_id, std::move(opt.plan));
        }
        break;
      }

      case CachingStrategy::kIdeal: {
        // 100% precision and recall: the optimal plan materializes with no
        // optimizer time charged (the Optimize call is measurement-only).
        PPC_ASSIGN_OR_RETURN(OptimizationResult opt,
                             optimizer.Optimize(prep, point));
        PPC_ASSIGN_OR_RETURN(double cost,
                             simulator.Execute(prep, *opt.plan, point));
        result.execute_seconds += cost * options_.cost_to_seconds;
        result.suboptimality_sum += 1.0;
        break;
      }
    }
  }
  return result;
}

}  // namespace ppc
