#include "ppc/plan_synopsis.h"

#include "common/macros.h"
#include "common/math_utils.h"

namespace ppc {

PlanSynopsis::PlanSynopsis(size_t transform_count, size_t max_buckets,
                           StreamingHistogram::MergePolicy policy) {
  PPC_CHECK(transform_count >= 1);
  histograms_.reserve(transform_count);
  for (size_t i = 0; i < transform_count; ++i) {
    histograms_.emplace_back(max_buckets, policy);
  }
}

void PlanSynopsis::Insert(size_t transform_idx, double position,
                          double cost) {
  PPC_DCHECK(transform_idx < histograms_.size());
  histograms_[transform_idx].Insert(position, cost);
}

double PlanSynopsis::MedianCount(const std::vector<double>& positions,
                                 const std::vector<double>& deltas) const {
  PPC_DCHECK(positions.size() == histograms_.size());
  PPC_DCHECK(deltas.size() == histograms_.size());
  std::vector<double> counts;
  counts.reserve(histograms_.size());
  for (size_t i = 0; i < histograms_.size(); ++i) {
    counts.push_back(histograms_[i].EstimateCount(positions[i] - deltas[i],
                                                  positions[i] + deltas[i]));
  }
  return Median(std::move(counts));
}

double PlanSynopsis::MedianAverageCost(
    const std::vector<double>& positions,
    const std::vector<double>& deltas) const {
  std::vector<double> costs;
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const double count = histograms_[i].EstimateCount(
        positions[i] - deltas[i], positions[i] + deltas[i]);
    if (count <= 0.0) continue;
    costs.push_back(histograms_[i].EstimateAverageCost(
        positions[i] - deltas[i], positions[i] + deltas[i]));
  }
  return costs.empty() ? 0.0 : Median(std::move(costs));
}

double PlanSynopsis::MedianCount(
    const std::vector<std::vector<ZInterval>>& ranges) const {
  PPC_DCHECK(ranges.size() == histograms_.size());
  std::vector<double> counts;
  counts.reserve(histograms_.size());
  for (size_t i = 0; i < histograms_.size(); ++i) {
    double count = 0.0;
    for (const ZInterval& interval : ranges[i]) {
      count += histograms_[i].EstimateCount(interval.lo, interval.hi);
    }
    counts.push_back(count);
  }
  return Median(std::move(counts));
}

double PlanSynopsis::MedianAverageCost(
    const std::vector<std::vector<ZInterval>>& ranges) const {
  PPC_DCHECK(ranges.size() == histograms_.size());
  std::vector<double> costs;
  for (size_t i = 0; i < histograms_.size(); ++i) {
    double count = 0.0;
    double cost_sum = 0.0;
    for (const ZInterval& interval : ranges[i]) {
      const double c =
          histograms_[i].EstimateCount(interval.lo, interval.hi);
      if (c <= 0.0) continue;
      count += c;
      cost_sum +=
          c * histograms_[i].EstimateAverageCost(interval.lo, interval.hi);
    }
    if (count > 0.0) costs.push_back(cost_sum / count);
  }
  return costs.empty() ? 0.0 : Median(std::move(costs));
}

void PlanSynopsis::BatchTransformCounts(
    const std::vector<std::vector<std::vector<ZInterval>>>&
        ranges_by_transform,
    size_t point_count, double* counts_out) const {
  PPC_DCHECK(ranges_by_transform.size() == histograms_.size());
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const StreamingHistogram& histogram = histograms_[i];
    PPC_DCHECK(ranges_by_transform[i].size() == point_count);
    double* row = counts_out + i * point_count;
    for (size_t p = 0; p < point_count; ++p) {
      double count = 0.0;
      for (const ZInterval& interval : ranges_by_transform[i][p]) {
        count += histogram.EstimateCount(interval.lo, interval.hi);
      }
      row[p] = count;
    }
  }
}

size_t PlanSynopsis::SampleCount() const {
  return histograms_.empty() ? 0 : histograms_.front().TotalCount();
}

uint64_t PlanSynopsis::SpaceBytes() const {
  uint64_t total = 0;
  for (const StreamingHistogram& h : histograms_) total += h.SpaceBytes();
  return total;
}

void PlanSynopsis::Clear() {
  for (StreamingHistogram& h : histograms_) h.Clear();
}

void PlanSynopsis::SerializeTo(ByteWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(histograms_.size()));
  for (const StreamingHistogram& h : histograms_) h.SerializeTo(writer);
}

Result<PlanSynopsis> PlanSynopsis::Deserialize(ByteReader* reader) {
  PPC_ASSIGN_OR_RETURN(uint32_t count, reader->GetU32());
  if (count == 0) {
    return Status::InvalidArgument("synopsis needs >= 1 histogram");
  }
  PlanSynopsis synopsis;
  synopsis.histograms_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PPC_ASSIGN_OR_RETURN(StreamingHistogram histogram,
                         StreamingHistogram::Deserialize(reader));
    synopsis.histograms_.push_back(std::move(histogram));
  }
  return synopsis;
}

}  // namespace ppc
