#include "ppc/plan_synopsis.h"

#include "common/macros.h"
#include "common/math_utils.h"
#include "lsh/simd.h"

namespace ppc {

PlanSynopsis::PlanSynopsis(size_t transform_count, size_t max_buckets,
                           StreamingHistogram::MergePolicy policy) {
  PPC_CHECK(transform_count >= 1);
  histograms_.reserve(transform_count);
  for (size_t i = 0; i < transform_count; ++i) {
    histograms_.emplace_back(max_buckets, policy);
  }
}

void PlanSynopsis::Insert(size_t transform_idx, double position,
                          double cost) {
  PPC_DCHECK(transform_idx < histograms_.size());
  histograms_[transform_idx].Insert(position, cost);
}

double PlanSynopsis::MedianCount(const std::vector<double>& positions,
                                 const std::vector<double>& deltas) const {
  PPC_DCHECK(positions.size() == histograms_.size());
  PPC_DCHECK(deltas.size() == histograms_.size());
  std::vector<double> counts;
  counts.reserve(histograms_.size());
  for (size_t i = 0; i < histograms_.size(); ++i) {
    counts.push_back(histograms_[i].EstimateCount(positions[i] - deltas[i],
                                                  positions[i] + deltas[i]));
  }
  return Median(std::move(counts));
}

double PlanSynopsis::MedianAverageCost(
    const std::vector<double>& positions,
    const std::vector<double>& deltas) const {
  std::vector<double> costs;
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const double count = histograms_[i].EstimateCount(
        positions[i] - deltas[i], positions[i] + deltas[i]);
    if (count <= 0.0) continue;
    costs.push_back(histograms_[i].EstimateAverageCost(
        positions[i] - deltas[i], positions[i] + deltas[i]));
  }
  return costs.empty() ? 0.0 : Median(std::move(costs));
}

double PlanSynopsis::MedianCount(
    const std::vector<std::vector<ZInterval>>& ranges) const {
  PPC_DCHECK(ranges.size() == histograms_.size());
  std::vector<double> counts;
  counts.reserve(histograms_.size());
  for (size_t i = 0; i < histograms_.size(); ++i) {
    double count = 0.0;
    for (const ZInterval& interval : ranges[i]) {
      count += histograms_[i].EstimateCount(interval.lo, interval.hi);
    }
    counts.push_back(count);
  }
  return Median(std::move(counts));
}

double PlanSynopsis::MedianAverageCost(
    const std::vector<std::vector<ZInterval>>& ranges) const {
  PPC_DCHECK(ranges.size() == histograms_.size());
  std::vector<double> costs;
  for (size_t i = 0; i < histograms_.size(); ++i) {
    double count = 0.0;
    double cost_sum = 0.0;
    for (const ZInterval& interval : ranges[i]) {
      const double c =
          histograms_[i].EstimateCount(interval.lo, interval.hi);
      if (c <= 0.0) continue;
      count += c;
      cost_sum +=
          c * histograms_[i].EstimateAverageCost(interval.lo, interval.hi);
    }
    if (count > 0.0) costs.push_back(cost_sum / count);
  }
  return costs.empty() ? 0.0 : Median(std::move(costs));
}

void PlanSynopsis::BatchTransformCounts(
    const std::vector<std::vector<std::vector<ZInterval>>>&
        ranges_by_transform,
    size_t point_count, double* counts_out) const {
  PPC_DCHECK(ranges_by_transform.size() == histograms_.size());
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const StreamingHistogram& histogram = histograms_[i];
    PPC_DCHECK(ranges_by_transform[i].size() == point_count);
    double* row = counts_out + i * point_count;
    for (size_t p = 0; p < point_count; ++p) {
      double count = 0.0;
      for (const ZInterval& interval : ranges_by_transform[i][p]) {
        count += histogram.EstimateCount(interval.lo, interval.hi);
      }
      row[p] = count;
    }
  }
}

void PlanSynopsis::BatchTransformCounts(const FlatQueryRanges& ranges,
                                        double* counts_out,
                                        double* probe_scratch) const {
  PPC_DCHECK(ranges.transform_count == histograms_.size());
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const StreamingHistogram& histogram = histograms_[i];
    // One probe export per (histogram, batch): the extent math that the
    // scalar EstimateCount redoes for every (point, bucket) pair is paid
    // once here, then the kernel streams the flat arrays.
    const size_t b = histogram.bucket_count();
    double* left = probe_scratch;
    double* right = probe_scratch + b;
    double* count = probe_scratch + 2 * b;
    double* centroid = probe_scratch + 3 * b;
    histogram.ExportProbe(left, right, count, centroid);
    double* row = counts_out + i * ranges.point_count;
    if (ranges.offsets == nullptr) {
      // Single-range mode: transform i's intervals are one contiguous
      // (lo, hi) pair per point, exactly the bounds layout the
      // across-queries kernel consumes — one call counts the whole batch
      // with each lane running the scalar accumulation sequence.
      static_assert(sizeof(ZInterval) == 2 * sizeof(double));
      simd::HistogramRangeCountMany(
          left, right, count, centroid, b,
          reinterpret_cast<const double*>(ranges.intervals +
                                          i * ranges.point_count),
          ranges.point_count, row);
      continue;
    }
    for (size_t p = 0; p < ranges.point_count; ++p) {
      double total = 0.0;
      const auto [begin, end] = ranges.Slice(i, p);
      for (const ZInterval* interval = begin; interval != end; ++interval) {
        total += simd::HistogramRangeCount(left, right, count, centroid, b,
                                           interval->lo, interval->hi);
      }
      row[p] = total;
    }
  }
}

double PlanSynopsis::MedianAverageCost(const FlatQueryRanges& ranges,
                                       size_t point, double* scratch) const {
  PPC_DCHECK(ranges.transform_count == histograms_.size());
  size_t n = 0;
  for (size_t i = 0; i < histograms_.size(); ++i) {
    double count = 0.0;
    double cost_sum = 0.0;
    const auto [begin, end] = ranges.Slice(i, point);
    for (const ZInterval* interval = begin; interval != end; ++interval) {
      const double c =
          histograms_[i].EstimateCount(interval->lo, interval->hi);
      if (c <= 0.0) continue;
      count += c;
      cost_sum +=
          c * histograms_[i].EstimateAverageCost(interval->lo, interval->hi);
    }
    if (count > 0.0) scratch[n++] = cost_sum / count;
  }
  return n == 0 ? 0.0 : MedianInPlace(scratch, n);
}

void PlanSynopsis::ExportCostProbes(size_t stride, double* probes) const {
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const StreamingHistogram& histogram = histograms_[i];
    PPC_DCHECK(histogram.bucket_count() <= stride);
    double* base = probes + i * 5 * stride;
    histogram.ExportProbe(base, base + stride, base + 2 * stride,
                          base + 4 * stride);
    histogram.ExportProbeCosts(base + 3 * stride);
  }
}

double PlanSynopsis::MedianAverageCostFromProbes(const FlatQueryRanges& ranges,
                                                 size_t point, size_t stride,
                                                 const double* probes,
                                                 double* scratch) const {
  PPC_DCHECK(ranges.transform_count == histograms_.size());
  size_t n = 0;
  for (size_t i = 0; i < histograms_.size(); ++i) {
    const size_t b = histograms_[i].bucket_count();
    const double* base = probes + i * 5 * stride;
    double count = 0.0;
    double cost_sum = 0.0;
    const auto [begin, end] = ranges.Slice(i, point);
    for (const ZInterval* interval = begin; interval != end; ++interval) {
      double c, cost;
      simd::HistogramRangeCountCost(base, base + stride, base + 2 * stride,
                                    base + 3 * stride, base + 4 * stride, b,
                                    interval->lo, interval->hi, &c, &cost);
      if (c <= 0.0) continue;
      count += c;
      // c * (cost / c), not cost: the scalar oracle computes
      // c * EstimateAverageCost(..) and EstimateAverageCost rounds the
      // quotient before the caller multiplies it back. Collapsing the
      // pair to `cost` would skip both roundings and break bit-identity.
      cost_sum += c * (cost / c);
    }
    if (count > 0.0) scratch[n++] = cost_sum / count;
  }
  return n == 0 ? 0.0 : MedianInPlace(scratch, n);
}

void PlanSynopsis::BatchAverageCostsFromProbes(
    const FlatQueryRanges& ranges, const uint32_t* point_idx, size_t n,
    size_t stride, const double* probes, double* bounds_ws,
    double* counts_ws, double* costs_ws, double* median_ws,
    double* out) const {
  PPC_DCHECK(ranges.offsets == nullptr);
  PPC_DCHECK(ranges.transform_count == histograms_.size());
  const size_t t = histograms_.size();
  for (size_t i = 0; i < t; ++i) {
    // Gather the selected points' single intervals for this transform into
    // a dense bounds array, then count+cost all of them in one sweep.
    const ZInterval* row = ranges.intervals + i * ranges.point_count;
    for (size_t k = 0; k < n; ++k) {
      const ZInterval& interval = row[point_idx[k]];
      bounds_ws[2 * k] = interval.lo;
      bounds_ws[2 * k + 1] = interval.hi;
    }
    const double* base = probes + i * 5 * stride;
    simd::HistogramRangeCountCostMany(
        base, base + stride, base + 2 * stride, base + 3 * stride,
        base + 4 * stride, histograms_[i].bucket_count(), bounds_ws, n,
        counts_ws + i * n, costs_ws + i * n);
  }
  for (size_t k = 0; k < n; ++k) {
    // Same per-transform accumulation as MedianAverageCostFromProbes,
    // degenerate single-interval form: count = c, cost_sum = c * (cost/c).
    size_t m = 0;
    for (size_t i = 0; i < t; ++i) {
      const double c = counts_ws[i * n + k];
      if (c <= 0.0) continue;
      const double cost_sum = c * (costs_ws[i * n + k] / c);
      median_ws[m++] = cost_sum / c;
    }
    out[k] = m == 0 ? 0.0 : MedianInPlace(median_ws, m);
  }
}

size_t PlanSynopsis::SampleCount() const {
  return histograms_.empty() ? 0 : histograms_.front().TotalCount();
}

uint64_t PlanSynopsis::SpaceBytes() const {
  uint64_t total = 0;
  for (const StreamingHistogram& h : histograms_) total += h.SpaceBytes();
  return total;
}

void PlanSynopsis::Clear() {
  for (StreamingHistogram& h : histograms_) h.Clear();
}

void PlanSynopsis::SerializeTo(ByteWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(histograms_.size()));
  for (const StreamingHistogram& h : histograms_) h.SerializeTo(writer);
}

Result<PlanSynopsis> PlanSynopsis::Deserialize(ByteReader* reader) {
  PPC_ASSIGN_OR_RETURN(uint32_t count, reader->GetU32());
  if (count == 0) {
    return Status::InvalidArgument("synopsis needs >= 1 histogram");
  }
  PlanSynopsis synopsis;
  synopsis.histograms_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PPC_ASSIGN_OR_RETURN(StreamingHistogram histogram,
                         StreamingHistogram::Deserialize(reader));
    synopsis.histograms_.push_back(std::move(histogram));
  }
  return synopsis;
}

}  // namespace ppc
