#ifndef PPC_PPC_PPC_FRAMEWORK_H_
#define PPC_PPC_PPC_FRAMEWORK_H_

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "exec/execution_simulator.h"
#include "optimizer/optimizer.h"
#include "ppc/metrics_registry.h"
#include "ppc/online_predictor.h"
#include "ppc/plan_cache.h"
#include "ppc/retune/retune_controller.h"
#include "workload/query_template.h"
#include "workload/selectivity_mapper.h"

namespace ppc {

/// The parametric plan caching framework (paper Fig. 1): glues together the
/// query optimizer, the plan cache, and one online density-based predictor
/// per registered query template.
///
/// For each incoming query instance the framework maps it to a plan-space
/// point (predicate selectivities), asks the template's predictor for a
/// cached plan, and either executes the predicted plan from the cache or
/// falls back to the optimizer — feeding the newly optimized point back
/// into the predictor. This is the top-level public API the examples use.
///
/// Thread safety: the intended lifecycle is register all templates, then
/// serve. ExecuteInstance / ExecuteAtPoint may be called concurrently from
/// any number of threads; the first execution (or an explicit Seal())
/// freezes the template registry, after which RegisterTemplate returns
/// FailedPrecondition. Per-template state synchronizes independently, so
/// queries against different templates never contend on a predictor lock.
class PpcFramework {
 public:
  struct Config {
    /// Template for per-query-template online predictors. The plan-space
    /// dimensionality is overridden per template at registration.
    OnlinePpcPredictor::Config online;
    /// Shared plan-cache capacity (plans, across all templates).
    size_t plan_cache_capacity = 64;
    /// Execution-cost noise (lognormal sigma; 0 = deterministic).
    double execution_noise_stddev = 0.0;
    /// Adaptive LSH retuning (DESIGN.md §17). Disabled by default: the
    /// paper's fixed-transform behavior is the baseline, and retuning is
    /// opt-in per deployment.
    RetuneOptions retune;
    uint64_t seed = 97;
  };

  /// Per-query execution report.
  struct QueryReport {
    /// Plan actually executed.
    PlanId executed_plan = kNullPlanId;
    /// Optimal plan at the query point (known only when the optimizer ran;
    /// kNullPlanId otherwise).
    PlanId optimal_plan = kNullPlanId;
    bool used_prediction = false;
    bool cache_hit = false;
    bool optimizer_invoked = false;
    /// A non-NULL prediction named a plan no longer in the cache; the
    /// optimizer ran instead and the prediction was scored against its
    /// exact ground truth.
    bool prediction_evicted = false;
    /// Negative feedback judged the executed prediction wrong and forced
    /// an immediate optimizer call.
    bool negative_feedback_triggered = false;
    double execution_cost = 0.0;
    /// Measured wall time spent in the optimizer for this query (us).
    double optimize_micros = 0.0;
    /// Measured wall time spent in prediction + bookkeeping (us).
    double predict_micros = 0.0;
    /// Measured wall time spent in (simulated) execution (us).
    double execute_micros = 0.0;
  };

  /// Point-in-time health snapshot of the whole serving path: framework
  /// event counters and latency histograms, plan-cache statistics, and
  /// one per-template block of predictor health (the paper's Sec. IV-E
  /// windowed estimators plus lifetime feedback counters). Per-section
  /// consistency mirrors the sources: each section is internally
  /// consistent, the whole is not one atomic cut.
  struct FrameworkMetrics {
    MetricsRegistry::Snapshot registry;
    PlanCache::Stats cache;
    struct TemplateMetrics {
      std::string name;
      OnlinePpcPredictor::Stats stats;
      /// Transform generation currently serving this template.
      uint32_t generation = 0;
    };
    std::vector<TemplateMetrics> templates;

    /// Serializes the snapshot as one JSON object:
    /// {"counters": ..., "histograms": ..., "cache": ..., "templates": ...}
    std::string ToJson() const;
  };

  PpcFramework(const Catalog* catalog, Config config,
               CostModelParams cost_params = CostModelParams());
  /// Stops the retune worker before per-template state is torn down.
  ~PpcFramework();

  /// Registers a query template (copied). Must be called before the first
  /// execution; returns FailedPrecondition once the registry is sealed.
  Status RegisterTemplate(const QueryTemplate& tmpl);

  /// Freezes the template registry. Idempotent; also triggered implicitly
  /// by the first ExecuteInstance/ExecuteAtPoint call.
  void Seal() { sealed_.store(true, std::memory_order_release); }
  bool sealed() const { return sealed_.load(std::memory_order_acquire); }

  /// Result of the read-only prediction path (PredictAtPoint): what plan
  /// the template's predictor names at a point, how confident it is, and
  /// whether that plan is currently resident in the shared cache.
  struct PredictReport {
    PlanId plan = kNullPlanId;
    double confidence = 0.0;
    bool cache_hit = false;
  };

  /// Pure read: asks the template's histogram predictor for a plan at
  /// `point` without executing anything, mutating any predictor state, or
  /// consuming randomness. This is the serving-layer PREDICT path — safe
  /// to call at any frequency from any thread (it takes only the
  /// predictor's shared read lock) and never perturbs the online learning
  /// loop the EXECUTE path drives.
  Result<PredictReport> PredictAtPoint(const std::string& template_name,
                                       const std::vector<double>& point) const;

  /// Batched PredictAtPoint: `count` points of `dims` coordinates each,
  /// flattened row-major in `points` (point p is the slice
  /// [p*dims, (p+1)*dims)). Returns one PredictReport per point, in
  /// order, bit-identical to `count` PredictAtPoint calls against the
  /// same state — but the whole batch takes the template lookup, the
  /// predictor's shared lock, each randomized transform (applied as one
  /// matrix-times-batch kernel), and each histogram's bucket walk once.
  /// Validation is all-or-nothing: an unknown template, a wrong arity, or
  /// any non-finite coordinate fails the whole batch (per-point
  /// abstentions are answers, not errors — see DESIGN.md §13).
  Result<std::vector<PredictReport>> PredictBatch(
      const std::string& template_name, const double* points, size_t count,
      size_t dims) const;

  /// Executes one query instance end to end (normalize -> predict ->
  /// cache/optimize -> execute -> feedback).
  Result<QueryReport> ExecuteInstance(const QueryInstance& instance);

  /// Same, but with the plan-space point given directly (used by the
  /// experiment harnesses, which generate workloads in plan space).
  Result<QueryReport> ExecuteAtPoint(const std::string& template_name,
                                     const std::vector<double>& point);

  /// The online predictor generation currently serving one registered
  /// template (nullptr if unknown). Returned as a shared_ptr snapshot:
  /// the caller's view stays valid even if a background refit installs a
  /// newer generation concurrently (RCU-style handoff, DESIGN.md §17).
  std::shared_ptr<const OnlinePpcPredictor> online_predictor(
      const std::string& template_name) const;

  /// Mutable snapshot of one template's serving predictor, for the
  /// replication path (PredictorState warm-start). nullptr if unknown.
  std::shared_ptr<OnlinePpcPredictor> mutable_online_predictor(
      const std::string& template_name);

  /// Warm generation handoff: atomically replaces the template's serving
  /// predictor with `next` (already built and back-filled). In-flight
  /// readers keep their snapshot of the old generation; new requests see
  /// the new one; nobody ever observes a partially built predictor.
  /// `next` must be strictly newer (transform_generation greater than the
  /// serving one) and dimensioned for the template — InvalidArgument
  /// otherwise; NotFound for an unknown template.
  Status InstallPredictorGeneration(const std::string& template_name,
                                    std::shared_ptr<OnlinePpcPredictor> next);

  /// The adaptive-retuning controller (nullptr unless config.retune.enabled).
  RetuneController* retune_controller() { return retune_.get(); }

  /// Names of all registered templates, in registry (sorted) order.
  std::vector<std::string> TemplateNames() const;

  /// Monotonic per-process sequence stamped onto captured PredictorState
  /// snapshots, so replicas can order snapshots from one leader.
  uint64_t NextSnapshotSequence() const {
    return snapshot_sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }
  const Optimizer& optimizer() const { return optimizer_; }

  /// The framework's instrument registry. Safe to read (and to hang extra
  /// counters on) from any thread at any time.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Collects the full observability snapshot (see FrameworkMetrics).
  FrameworkMetrics MetricsSnapshot() const;

 private:
  struct TemplateState {
    QueryTemplate tmpl;
    PreparedTemplate prepared;
    std::unique_ptr<SelectivityMapper> mapper;
    /// The serving predictor generation. Readers load one snapshot
    /// shared_ptr per request and use it throughout; the retune worker
    /// (and the replication apply path) atomically store a fully built
    /// replacement — readers never block on a handoff, and the old
    /// generation is destroyed only after its last in-flight reader
    /// drops its reference.
    std::atomic<std::shared_ptr<OnlinePpcPredictor>> online;
  };

  Result<TemplateState*> FindTemplate(const std::string& name);

  const Catalog* catalog_;
  Config config_;
  Optimizer optimizer_;
  ExecutionSimulator simulator_;
  PlanCache plan_cache_;
  /// Mutable so const snapshot paths (MetricsSnapshot) can refresh the
  /// drift.* gauges; the registry is internally synchronized.
  mutable MetricsRegistry metrics_;
  /// Serving-path instruments, resolved once at construction so the hot
  /// path never takes the registry lock. See DESIGN.md for the naming
  /// scheme.
  struct {
    MetricsCounter* queries = nullptr;
    MetricsCounter* predictions_executed = nullptr;
    MetricsCounter* predictions_null = nullptr;
    MetricsCounter* predictions_evicted = nullptr;
    MetricsCounter* predictions_random_invocation = nullptr;
    MetricsCounter* negative_feedback = nullptr;
    MetricsCounter* optimizer_calls = nullptr;
    LatencyHistogram* predict_us = nullptr;
    LatencyHistogram* optimize_us = nullptr;
    LatencyHistogram* execute_us = nullptr;
    LatencyHistogram* feedback_us = nullptr;
  } instruments_;
  /// Guards templates_. Writers exist only before sealing; lookups take
  /// the (uncontended-after-seal) shared side.
  mutable std::shared_mutex templates_mu_;
  std::atomic<bool> sealed_{false};
  mutable std::atomic<uint64_t> snapshot_sequence_{0};
  std::map<std::string, std::unique_ptr<TemplateState>> templates_;
  /// Declared after templates_ (and destroyed first via the explicit
  /// destructor's Stop()) so the refit worker can never touch dead state.
  std::unique_ptr<RetuneController> retune_;
};

}  // namespace ppc

#endif  // PPC_PPC_PPC_FRAMEWORK_H_
