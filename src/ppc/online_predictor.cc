#include "ppc/online_predictor.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_utils.h"

namespace ppc {

OnlinePpcPredictor::OnlinePpcPredictor(Config config)
    : config_(config),
      predictor_(config.predictor),
      tracker_(config.estimator_window),
      rng_(config.seed) {}

OnlinePpcPredictor::Decision OnlinePpcPredictor::Decide(
    const std::vector<double>& x) {
  Decision decision;
  decision.prediction = predictor_.Predict(x);
  if (!decision.prediction.has_value()) {
    // NULL prediction: the optimizer runs; recall estimator records a miss.
    tracker_.RecordPrediction(kNullPlanId, /*made=*/false, /*correct=*/false);
    decision.use_prediction = false;
    return decision;
  }

  // Random optimizer invocation (Sec. IV-D): probability is a function of
  // the configured mean and the prediction's confidence — low-confidence
  // regions are probed more, but even fully-confident predictions keep a
  // floor of half the mean so ground truth keeps flowing everywhere.
  // p ranges over [0.5, 1.5] x mean as confidence goes 1 -> 0.
  if (config_.mean_invocation_probability > 0.0) {
    const double p = Clamp(config_.mean_invocation_probability *
                               (1.5 - decision.prediction.confidence),
                           0.0, 1.0);
    if (rng_.Bernoulli(p)) {
      ++random_invocations_;
      decision.random_invocation = true;
      decision.use_prediction = false;
      // The optimizer result will arrive via ObserveOptimized; the
      // prediction itself is not executed so it is not scored here.
      return decision;
    }
  }

  decision.use_prediction = true;
  return decision;
}

void OnlinePpcPredictor::ObserveOptimized(const LabeledPoint& point) {
  predictor_.Insert(point);
  ++optimizer_insertions_;
}

bool OnlinePpcPredictor::ReportPredictionExecuted(
    const std::vector<double>& x, const Prediction& prediction,
    double actual_cost) {
  PPC_CHECK(prediction.has_value());
  // Plan-cost-predictability test (Assumption 2 / Sec. IV-E): if the
  // prediction were correct, the measured cost should lie within
  // (1 +/- epsilon) of the histogram's average for that plan near x.
  // Predict() already computed that average; re-query only if absent.
  const double expected = prediction.estimated_cost > 0.0
                              ? prediction.estimated_cost
                              : predictor_.EstimateCost(x, prediction.plan);
  bool estimated_correct = true;
  if (expected > 0.0) {
    const double rel_error = std::abs(actual_cost - expected) / expected;
    estimated_correct = rel_error <= config_.cost_error_bound;
  }
  tracker_.RecordPrediction(prediction.plan, /*made=*/true,
                            estimated_correct);

  // Positive feedback (Sec. VII extension): a high-confidence prediction
  // whose measured cost matches the histogram expectation is trusted as a
  // self-labeled sample, capped relative to the optimizer-sourced pool so
  // self-reinforcement cannot spiral.
  if (config_.positive_feedback && estimated_correct && expected > 0.0 &&
      prediction.confidence >= config_.positive_feedback_confidence &&
      static_cast<double>(positive_feedback_insertions_) <
          config_.positive_feedback_max_ratio *
              static_cast<double>(optimizer_insertions_)) {
    predictor_.Insert(LabeledPoint{x, prediction.plan, actual_cost});
    ++positive_feedback_insertions_;
  }

  MaybeReset();
  return config_.negative_feedback && !estimated_correct;
}

void OnlinePpcPredictor::MaybeReset() {
  if (config_.reset_precision_threshold <= 0.0) return;
  if (tracker_.PrecisionBelow(config_.reset_precision_threshold)) {
    predictor_.Reset();
    tracker_.Clear();
    ++reset_count_;
  }
}

}  // namespace ppc
