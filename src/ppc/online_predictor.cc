#include "ppc/online_predictor.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_utils.h"

namespace ppc {

OnlinePpcPredictor::OnlinePpcPredictor(Config config)
    : config_(config),
      predictor_(config.predictor),
      tracker_(config.estimator_window),
      rng_(config.seed) {}

OnlinePpcPredictor::OnlinePpcPredictor(Config config,
                                       LshHistogramsPredictor predictor)
    : config_(std::move(config)),
      predictor_(std::move(predictor)),
      tracker_(config_.estimator_window),
      rng_(config_.seed) {
  config_.predictor = predictor_.config();
}

void OnlinePpcPredictor::InheritLifetimeCounters(
    const OnlinePpcPredictor& prev) {
  reset_count_.store(prev.reset_count(), std::memory_order_relaxed);
  random_invocations_.store(prev.random_invocations(),
                            std::memory_order_relaxed);
  positive_feedback_insertions_.store(prev.positive_feedback_insertions(),
                                      std::memory_order_relaxed);
  optimizer_insertions_.store(prev.optimizer_insertions(),
                              std::memory_order_relaxed);
  feedback_positive_.store(prev.feedback_positive(),
                           std::memory_order_relaxed);
  feedback_negative_.store(prev.feedback_negative(),
                           std::memory_order_relaxed);
}

OnlinePpcPredictor::WindowedSignal OnlinePpcPredictor::GetWindowedSignal()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  WindowedSignal signal;
  signal.precision = tracker_.TemplatePrecision();
  signal.recall = tracker_.TemplateRecall();
  signal.beta = tracker_.Beta();
  signal.window_full = tracker_.WindowFull();
  signal.beta_window_full = tracker_.BetaWindowFull();
  return signal;
}

OnlinePpcPredictor::Decision OnlinePpcPredictor::Decide(
    const std::vector<double>& x) {
  Decision decision;
  // Histogram read outside mu_: concurrent sessions share the predictor's
  // reader lock, so the O(t * n * b_h) scan parallelizes.
  decision.prediction = predictor_.Predict(x);

  std::lock_guard<std::mutex> lock(mu_);
  if (!decision.prediction.has_value()) {
    // NULL prediction: the optimizer runs; recall estimator records a miss.
    tracker_.RecordPrediction(kNullPlanId, /*made=*/false, /*correct=*/false);
    decision.use_prediction = false;
    return decision;
  }

  // Random optimizer invocation (Sec. IV-D): probability is a function of
  // the configured mean and the prediction's confidence — low-confidence
  // regions are probed more, but even fully-confident predictions keep a
  // floor of half the mean so ground truth keeps flowing everywhere.
  // p ranges over [0.5, 1.5] x mean as confidence goes 1 -> 0.
  if (config_.mean_invocation_probability > 0.0) {
    const double p = Clamp(config_.mean_invocation_probability *
                               (1.5 - decision.prediction.confidence),
                           0.0, 1.0);
    if (rng_.Bernoulli(p)) {
      random_invocations_.fetch_add(1, std::memory_order_relaxed);
      decision.random_invocation = true;
      decision.use_prediction = false;
      // The optimizer result will arrive via ObserveOptimized; the
      // prediction itself is not executed so it is not scored here.
      return decision;
    }
  }

  decision.use_prediction = true;
  return decision;
}

void OnlinePpcPredictor::ObserveOptimized(const LabeledPoint& point) {
  predictor_.Insert(point);  // predictor's own writer lock
  optimizer_insertions_.fetch_add(1, std::memory_order_relaxed);
}

bool OnlinePpcPredictor::ReportPredictionExecuted(
    const std::vector<double>& x, const Prediction& prediction,
    double actual_cost) {
  PPC_CHECK(prediction.has_value());
  // Plan-cost-predictability test (Assumption 2 / Sec. IV-E): if the
  // prediction were correct, the measured cost should lie within
  // (1 +/- epsilon) of the histogram's average for that plan near x.
  // Predict() already computed that average; re-query only if absent.
  const double expected = prediction.estimated_cost > 0.0
                              ? prediction.estimated_cost
                              : predictor_.EstimateCost(x, prediction.plan);
  bool estimated_correct = true;
  if (expected > 0.0) {
    const double rel_error = std::abs(actual_cost - expected) / expected;
    estimated_correct = rel_error <= config_.cost_error_bound;
  }

  std::lock_guard<std::mutex> lock(mu_);
  tracker_.RecordPrediction(prediction.plan, /*made=*/true,
                            estimated_correct);
  (estimated_correct ? feedback_positive_ : feedback_negative_)
      .fetch_add(1, std::memory_order_relaxed);

  // Positive feedback (Sec. VII extension): a high-confidence prediction
  // whose measured cost matches the histogram expectation is trusted as a
  // self-labeled sample, capped relative to the optimizer-sourced pool so
  // self-reinforcement cannot spiral.
  if (config_.positive_feedback && estimated_correct && expected > 0.0 &&
      prediction.confidence >= config_.positive_feedback_confidence &&
      static_cast<double>(positive_feedback_insertions_.load(
          std::memory_order_relaxed)) <
          config_.positive_feedback_max_ratio *
              static_cast<double>(optimizer_insertions_.load(
                  std::memory_order_relaxed))) {
    predictor_.Insert(LabeledPoint{x, prediction.plan, actual_cost});
    positive_feedback_insertions_.fetch_add(1, std::memory_order_relaxed);
  }

  MaybeResetLocked();
  return config_.negative_feedback && !estimated_correct;
}

void OnlinePpcPredictor::ReportPredictionOutcome(const Prediction& prediction,
                                                 PlanId true_plan) {
  PPC_CHECK(prediction.has_value());
  const bool correct = prediction.plan == true_plan;
  std::lock_guard<std::mutex> lock(mu_);
  tracker_.RecordPrediction(prediction.plan, /*made=*/true, correct);
  (correct ? feedback_positive_ : feedback_negative_)
      .fetch_add(1, std::memory_order_relaxed);
  MaybeResetLocked();
}

double OnlinePpcPredictor::TemplatePrecision() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tracker_.TemplatePrecision();
}

double OnlinePpcPredictor::PlanPrecision(PlanId plan) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tracker_.PlanPrecision(plan);
}

OnlinePpcPredictor::Stats OnlinePpcPredictor::GetStats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.precision = tracker_.TemplatePrecision();
    stats.recall = tracker_.TemplateRecall();
    stats.beta = tracker_.Beta();
  }
  stats.resets = reset_count();
  stats.random_invocations = random_invocations();
  stats.optimizer_insertions = optimizer_insertions();
  stats.positive_feedback_insertions = positive_feedback_insertions();
  stats.feedback_positive = feedback_positive();
  stats.feedback_negative = feedback_negative();
  return stats;
}

void OnlinePpcPredictor::MaybeResetLocked() {
  if (config_.reset_precision_threshold <= 0.0) return;
  if (tracker_.PrecisionBelow(config_.reset_precision_threshold)) {
    predictor_.Reset();
    tracker_.Clear();
    reset_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace ppc
