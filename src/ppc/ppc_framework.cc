#include "ppc/ppc_framework.h"

#include <chrono>
#include <cmath>

#include "common/hash.h"

namespace ppc {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Boundary validation for points arriving from outside the process (the
/// serving layer): a wrong-arity or non-finite point must fail as
/// InvalidArgument here, not trip PPC_DCHECKs (or silently corrupt
/// histograms) inside the LSH transform stack.
Status ValidatePoint(const QueryTemplate& tmpl,
                     const std::vector<double>& point) {
  if (static_cast<int>(point.size()) != tmpl.ParameterDegree()) {
    return Status::InvalidArgument(
        "point has " + std::to_string(point.size()) + " dimensions; template " +
        tmpl.name + " has degree " + std::to_string(tmpl.ParameterDegree()));
  }
  for (double v : point) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("point coordinate is not finite");
    }
  }
  return Status::OK();
}

}  // namespace

PpcFramework::PpcFramework(const Catalog* catalog, Config config,
                           CostModelParams cost_params)
    : catalog_(catalog),
      config_(config),
      optimizer_(catalog, cost_params),
      simulator_(&optimizer_.cost_model(),
                 ExecutionSimulator::Options{config.execution_noise_stddev,
                                             config.seed}),
      plan_cache_(config.plan_cache_capacity) {
  PPC_CHECK(catalog != nullptr);
  instruments_.queries = &metrics_.counter("framework.queries");
  instruments_.predictions_executed =
      &metrics_.counter("framework.predictions.executed");
  instruments_.predictions_null =
      &metrics_.counter("framework.predictions.null");
  instruments_.predictions_evicted =
      &metrics_.counter("framework.predictions.evicted");
  instruments_.predictions_random_invocation =
      &metrics_.counter("framework.predictions.random_invocation");
  instruments_.negative_feedback =
      &metrics_.counter("framework.negative_feedback");
  instruments_.optimizer_calls =
      &metrics_.counter("framework.optimizer.calls");
  instruments_.predict_us = &metrics_.histogram("framework.predict_us");
  instruments_.optimize_us = &metrics_.histogram("framework.optimize_us");
  instruments_.execute_us = &metrics_.histogram("framework.execute_us");
  instruments_.feedback_us = &metrics_.histogram("framework.feedback_us");
  if (config_.retune.enabled) {
    retune_ = std::make_unique<RetuneController>(this, config_.retune);
  }
}

PpcFramework::~PpcFramework() {
  // Join the refit worker before templates_ (which it reads through
  // shared_ptr snapshots) starts dying.
  if (retune_ != nullptr) retune_->Stop();
}

Status PpcFramework::RegisterTemplate(const QueryTemplate& tmpl) {
  if (sealed()) {
    return Status::FailedPrecondition(
        "template registry is sealed (queries already executed); register "
        "all templates before serving");
  }
  auto state = std::make_unique<TemplateState>();
  state->tmpl = tmpl;
  PPC_ASSIGN_OR_RETURN(state->prepared, optimizer_.Prepare(state->tmpl));
  state->mapper =
      std::make_unique<SelectivityMapper>(catalog_, &state->tmpl);
  PPC_RETURN_NOT_OK(state->mapper->Validate());

  OnlinePpcPredictor::Config online = config_.online;
  online.predictor.dimensions = state->tmpl.ParameterDegree();
  // FNV-1a, not std::hash: the per-template seed must be identical across
  // standard libraries so experiment runs reproduce cross-platform.
  online.seed = config_.seed ^ Fnv1a64(tmpl.name);
  state->online.store(std::make_shared<OnlinePpcPredictor>(online),
                      std::memory_order_release);

  std::unique_lock<std::shared_mutex> lock(templates_mu_);
  if (sealed()) {
    return Status::FailedPrecondition(
        "template registry is sealed (queries already executed); register "
        "all templates before serving");
  }
  if (!templates_.emplace(tmpl.name, std::move(state)).second) {
    return Status::AlreadyExists("template " + tmpl.name);
  }
  return Status::OK();
}

Result<PpcFramework::TemplateState*> PpcFramework::FindTemplate(
    const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(templates_mu_);
  auto it = templates_.find(name);
  if (it == templates_.end()) {
    return Status::NotFound("template " + name + " is not registered");
  }
  return it->second.get();
}

Result<PpcFramework::QueryReport> PpcFramework::ExecuteInstance(
    const QueryInstance& instance) {
  Seal();
  PPC_ASSIGN_OR_RETURN(TemplateState * state,
                       FindTemplate(instance.template_name));
  PPC_ASSIGN_OR_RETURN(std::vector<double> point,
                       state->mapper->ToPlanSpacePoint(instance));
  return ExecuteAtPoint(instance.template_name, point);
}

Result<PpcFramework::PredictReport> PpcFramework::PredictAtPoint(
    const std::string& template_name, const std::vector<double>& point) const {
  std::shared_lock<std::shared_mutex> lock(templates_mu_);
  auto it = templates_.find(template_name);
  if (it == templates_.end()) {
    return Status::NotFound("template " + template_name +
                            " is not registered");
  }
  const TemplateState* state = it->second.get();
  PPC_RETURN_NOT_OK(ValidatePoint(state->tmpl, point));
  // One generation snapshot per request: a concurrent handoff cannot pull
  // the predictor out from under this read, and
  // LshHistogramsPredictor::Predict synchronizes internally (shared read
  // lock) against concurrent EXECUTE-path mutators.
  const std::shared_ptr<OnlinePpcPredictor> online =
      state->online.load(std::memory_order_acquire);
  const Prediction prediction = online->predictor().Predict(point);
  PredictReport report;
  report.plan = prediction.plan;
  report.confidence = prediction.confidence;
  report.cache_hit =
      prediction.has_value() && plan_cache_.Contains(prediction.plan);
  return report;
}

Result<std::vector<PpcFramework::PredictReport>> PpcFramework::PredictBatch(
    const std::string& template_name, const double* points, size_t count,
    size_t dims) const {
  std::shared_lock<std::shared_mutex> lock(templates_mu_);
  auto it = templates_.find(template_name);
  if (it == templates_.end()) {
    return Status::NotFound("template " + template_name +
                            " is not registered");
  }
  const TemplateState* state = it->second.get();
  if (count == 0) {
    return Status::InvalidArgument("empty prediction batch");
  }
  if (static_cast<int>(dims) != state->tmpl.ParameterDegree()) {
    return Status::InvalidArgument(
        "batch points have " + std::to_string(dims) +
        " dimensions; template " + state->tmpl.name + " has degree " +
        std::to_string(state->tmpl.ParameterDegree()));
  }
  for (size_t i = 0; i < count * dims; ++i) {
    if (!std::isfinite(points[i])) {
      return Status::InvalidArgument("point coordinate is not finite");
    }
  }
  const std::shared_ptr<OnlinePpcPredictor> online =
      state->online.load(std::memory_order_acquire);
  const std::vector<Prediction> predictions =
      online->predictor().PredictBatch(points, count);
  std::vector<PredictReport> reports(count);
  for (size_t p = 0; p < count; ++p) {
    reports[p].plan = predictions[p].plan;
    reports[p].confidence = predictions[p].confidence;
    reports[p].cache_hit = predictions[p].has_value() &&
                           plan_cache_.Contains(predictions[p].plan);
  }
  return reports;
}

Result<PpcFramework::QueryReport> PpcFramework::ExecuteAtPoint(
    const std::string& template_name, const std::vector<double>& point) {
  Seal();
  PPC_ASSIGN_OR_RETURN(TemplateState * state, FindTemplate(template_name));
  PPC_RETURN_NOT_OK(ValidatePoint(state->tmpl, point));
  QueryReport report;
  instruments_.queries->Increment();

  // One generation snapshot for the whole query: the decision and every
  // feedback report land on the same predictor even if a refit installs
  // a newer generation mid-query (late feedback to a superseded
  // generation is harmless — it is about to be dropped).
  const std::shared_ptr<OnlinePpcPredictor> online =
      state->online.load(std::memory_order_acquire);

  // --- Predict ---
  auto predict_start = Clock::now();
  OnlinePpcPredictor::Decision decision = online->Decide(point);
  std::shared_ptr<const PlanNode> cached_plan;
  if (decision.use_prediction) {
    cached_plan = plan_cache_.Get(decision.prediction.plan);
  }
  report.predict_micros = MicrosSince(predict_start);
  instruments_.predict_us->Record(report.predict_micros);
  if (!decision.prediction.has_value()) {
    instruments_.predictions_null->Increment();
  } else if (decision.random_invocation) {
    instruments_.predictions_random_invocation->Increment();
  }

  if (decision.use_prediction && cached_plan != nullptr) {
    // --- Execute the predicted cached plan ---
    report.used_prediction = true;
    report.cache_hit = true;
    report.executed_plan = decision.prediction.plan;
    instruments_.predictions_executed->Increment();
    auto exec_start = Clock::now();
    PPC_ASSIGN_OR_RETURN(
        report.execution_cost,
        simulator_.Execute(state->prepared, *cached_plan, point));
    report.execute_micros = MicrosSince(exec_start);
    instruments_.execute_us->Record(report.execute_micros);

    // --- Negative feedback ---
    auto feedback_start = Clock::now();
    const bool suspected = online->ReportPredictionExecuted(
        point, decision.prediction, report.execution_cost);
    const double feedback_micros = MicrosSince(feedback_start);
    report.predict_micros += feedback_micros;
    instruments_.feedback_us->Record(feedback_micros);
    if (suspected) {
      report.negative_feedback_triggered = true;
      instruments_.negative_feedback->Increment();
      auto opt_start = Clock::now();
      PPC_ASSIGN_OR_RETURN(OptimizationResult opt,
                           optimizer_.Optimize(state->prepared, point));
      report.optimize_micros = MicrosSince(opt_start);
      instruments_.optimize_us->Record(report.optimize_micros);
      report.optimizer_invoked = true;
      instruments_.optimizer_calls->Increment();
      report.optimal_plan = opt.plan_id;
      // The truth point corrects the histograms; the query itself was
      // already answered by the (suspect) cached plan.
      PPC_ASSIGN_OR_RETURN(
          double true_cost,
          simulator_.Execute(state->prepared, *opt.plan, point));
      const LabeledPoint truth{point, opt.plan_id, true_cost};
      online->ObserveOptimized(truth);
      if (retune_ != nullptr) {
        retune_->ObserveGroundTruth(template_name, truth);
      }
      plan_cache_.Put(opt.plan_id, std::move(opt.plan));
      // Put resets the entry's eviction rank to the default 1.0; rank the
      // corrective plan by its actual tracked precision or precision-based
      // eviction mis-prioritizes it.
      plan_cache_.SetPrecisionScore(
          opt.plan_id, online->PlanPrecision(opt.plan_id));
    } else if (retune_ != nullptr) {
      // A cost-validated prediction is still a (point, plan, cost)
      // observation of the live workload. Retaining it keeps the refit
      // reservoir tracking the recent query-point distribution even when
      // the cache is warm and optimizer calls are rare.
      retune_->ObserveGroundTruth(
          template_name,
          LabeledPoint{point, report.executed_plan, report.execution_cost});
    }
    // Refresh the cache's eviction signal for this plan.
    plan_cache_.SetPrecisionScore(
        report.executed_plan,
        online->PlanPrecision(report.executed_plan));
    if (retune_ != nullptr) {
      retune_->EvaluateTrigger(template_name, online->GetWindowedSignal());
    }
    return report;
  }

  // --- Optimize (NULL prediction, cache miss, or random invocation) ---
  report.prediction_evicted =
      decision.use_prediction && cached_plan == nullptr;
  auto opt_start = Clock::now();
  PPC_ASSIGN_OR_RETURN(OptimizationResult opt,
                       optimizer_.Optimize(state->prepared, point));
  report.optimize_micros = MicrosSince(opt_start);
  instruments_.optimize_us->Record(report.optimize_micros);
  report.optimizer_invoked = true;
  instruments_.optimizer_calls->Increment();
  report.optimal_plan = opt.plan_id;
  report.executed_plan = opt.plan_id;
  if (report.prediction_evicted) {
    // The prediction named an evicted plan, so the optimizer ran and the
    // true plan is known exactly — score the prediction instead of
    // silently dropping it (the precision/recall windows would otherwise
    // overcount by omission).
    instruments_.predictions_evicted->Increment();
    online->ReportPredictionOutcome(decision.prediction, opt.plan_id);
  }
  auto exec_start = Clock::now();
  PPC_ASSIGN_OR_RETURN(report.execution_cost,
                       simulator_.Execute(state->prepared, *opt.plan, point));
  report.execute_micros = MicrosSince(exec_start);
  instruments_.execute_us->Record(report.execute_micros);
  const LabeledPoint truth{point, opt.plan_id, report.execution_cost};
  online->ObserveOptimized(truth);
  if (retune_ != nullptr) {
    retune_->ObserveGroundTruth(template_name, truth);
  }
  plan_cache_.Put(opt.plan_id, std::move(opt.plan));
  // Same rank refresh as on the negative-feedback path: a re-optimized
  // plan must carry its tracked precision, not the overwrite default.
  plan_cache_.SetPrecisionScore(opt.plan_id,
                                online->PlanPrecision(opt.plan_id));
  if (retune_ != nullptr) {
    retune_->EvaluateTrigger(template_name, online->GetWindowedSignal());
  }
  return report;
}

std::shared_ptr<const OnlinePpcPredictor> PpcFramework::online_predictor(
    const std::string& template_name) const {
  std::shared_lock<std::shared_mutex> lock(templates_mu_);
  auto it = templates_.find(template_name);
  return it == templates_.end()
             ? nullptr
             : it->second->online.load(std::memory_order_acquire);
}

std::shared_ptr<OnlinePpcPredictor> PpcFramework::mutable_online_predictor(
    const std::string& template_name) {
  std::shared_lock<std::shared_mutex> lock(templates_mu_);
  auto it = templates_.find(template_name);
  return it == templates_.end()
             ? nullptr
             : it->second->online.load(std::memory_order_acquire);
}

Status PpcFramework::InstallPredictorGeneration(
    const std::string& template_name,
    std::shared_ptr<OnlinePpcPredictor> next) {
  if (next == nullptr) {
    return Status::InvalidArgument("null predictor generation");
  }
  std::shared_lock<std::shared_mutex> lock(templates_mu_);
  auto it = templates_.find(template_name);
  if (it == templates_.end()) {
    return Status::NotFound("template " + template_name +
                            " is not registered");
  }
  TemplateState* state = it->second.get();
  if (next->config().predictor.dimensions != state->tmpl.ParameterDegree()) {
    return Status::InvalidArgument(
        "predictor generation has " +
        std::to_string(next->config().predictor.dimensions) +
        " dimensions; template " + template_name + " has degree " +
        std::to_string(state->tmpl.ParameterDegree()));
  }
  const uint32_t next_generation = next->predictor().transform_generation();
  // CAS loop: a concurrent install (refit worker racing a replication
  // apply) can never regress the serving generation.
  std::shared_ptr<OnlinePpcPredictor> current =
      state->online.load(std::memory_order_acquire);
  for (;;) {
    if (current != nullptr &&
        next_generation <= current->predictor().transform_generation()) {
      return Status::InvalidArgument(
          "predictor generation " + std::to_string(next_generation) +
          " is not newer than serving generation " +
          std::to_string(current->predictor().transform_generation()));
    }
    if (state->online.compare_exchange_strong(current, next,
                                              std::memory_order_acq_rel)) {
      break;
    }
  }
  metrics_.gauge("drift." + template_name + ".generation")
      .Set(static_cast<double>(next_generation));
  return Status::OK();
}

std::vector<std::string> PpcFramework::TemplateNames() const {
  std::shared_lock<std::shared_mutex> lock(templates_mu_);
  std::vector<std::string> names;
  names.reserve(templates_.size());
  for (const auto& [name, state] : templates_) names.push_back(name);
  return names;
}

PpcFramework::FrameworkMetrics PpcFramework::MetricsSnapshot() const {
  FrameworkMetrics snap;
  snap.cache = plan_cache_.GetStats();
  {
    std::shared_lock<std::shared_mutex> lock(templates_mu_);
    snap.templates.reserve(templates_.size());
    for (const auto& [name, state] : templates_) {
      const std::shared_ptr<OnlinePpcPredictor> online =
          state->online.load(std::memory_order_acquire);
      snap.templates.push_back(FrameworkMetrics::TemplateMetrics{
          name, online->GetStats(), online->predictor().transform_generation()});
      // Refresh the drift.* gauges from the same signal read, so the
      // registry snapshot below carries the current windowed
      // precision/recall per template (ISSUE: the Sec. IV-E drift signal
      // was internal-only).
      const OnlinePpcPredictor::WindowedSignal signal =
          online->GetWindowedSignal();
      metrics_.gauge("drift." + name + ".precision").Set(signal.precision);
      metrics_.gauge("drift." + name + ".recall").Set(signal.recall);
      metrics_.gauge("drift." + name + ".beta").Set(signal.beta);
      metrics_.gauge("drift." + name + ".window_full")
          .Set(signal.window_full ? 1.0 : 0.0);
      metrics_.gauge("drift." + name + ".generation")
          .Set(static_cast<double>(
              online->predictor().transform_generation()));
    }
  }
  snap.registry = metrics_.TakeSnapshot();
  return snap;
}

std::string PpcFramework::FrameworkMetrics::ToJson() const {
  // Splice the registry's own {"counters": ..., "histograms": ...} object
  // open and append the cache and template sections.
  std::string out = registry.ToJson();
  out.pop_back();  // trailing '}'

  out += ", \"cache\": {\"hits\": " + std::to_string(cache.hits);
  out += ", \"misses\": " + std::to_string(cache.misses);
  out += ", \"evictions\": " + std::to_string(cache.evictions);
  out += ", \"precision_evictions\": " +
         std::to_string(cache.precision_evictions);
  out += ", \"size\": " + std::to_string(cache.size);
  out += ", \"capacity\": " + std::to_string(cache.capacity);
  out += ", \"shards\": [";
  for (size_t i = 0; i < cache.shards.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"entries\": " + std::to_string(cache.shards[i].entries);
    out += ", \"hits\": " + std::to_string(cache.shards[i].hits);
    out += ", \"misses\": " + std::to_string(cache.shards[i].misses) + "}";
  }
  out += "]}";

  out += ", \"templates\": [";
  for (size_t i = 0; i < templates.size(); ++i) {
    if (i > 0) out += ", ";
    const OnlinePpcPredictor::Stats& s = templates[i].stats;
    out += "{\"name\": ";
    AppendJsonString(templates[i].name, &out);
    out += ", \"precision\": " + JsonNumber(s.precision);
    out += ", \"recall\": " + JsonNumber(s.recall);
    out += ", \"beta\": " + JsonNumber(s.beta);
    out += ", \"resets\": " + std::to_string(s.resets);
    out += ", \"random_invocations\": " +
           std::to_string(s.random_invocations);
    out += ", \"optimizer_insertions\": " +
           std::to_string(s.optimizer_insertions);
    out += ", \"positive_feedback_insertions\": " +
           std::to_string(s.positive_feedback_insertions);
    out += ", \"feedback_positive\": " + std::to_string(s.feedback_positive);
    out += ", \"feedback_negative\": " + std::to_string(s.feedback_negative);
    out += ", \"generation\": " + std::to_string(templates[i].generation);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace ppc
