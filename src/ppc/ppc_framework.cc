#include "ppc/ppc_framework.h"

#include <chrono>

namespace ppc {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

PpcFramework::PpcFramework(const Catalog* catalog, Config config,
                           CostModelParams cost_params)
    : catalog_(catalog),
      config_(config),
      optimizer_(catalog, cost_params),
      simulator_(&optimizer_.cost_model(),
                 ExecutionSimulator::Options{config.execution_noise_stddev,
                                             config.seed}),
      plan_cache_(config.plan_cache_capacity) {
  PPC_CHECK(catalog != nullptr);
}

Status PpcFramework::RegisterTemplate(const QueryTemplate& tmpl) {
  if (sealed()) {
    return Status::FailedPrecondition(
        "template registry is sealed (queries already executed); register "
        "all templates before serving");
  }
  auto state = std::make_unique<TemplateState>();
  state->tmpl = tmpl;
  PPC_ASSIGN_OR_RETURN(state->prepared, optimizer_.Prepare(state->tmpl));
  state->mapper =
      std::make_unique<SelectivityMapper>(catalog_, &state->tmpl);
  PPC_RETURN_NOT_OK(state->mapper->Validate());

  OnlinePpcPredictor::Config online = config_.online;
  online.predictor.dimensions = state->tmpl.ParameterDegree();
  online.seed = config_.seed ^ std::hash<std::string>{}(tmpl.name);
  state->online = std::make_unique<OnlinePpcPredictor>(online);

  std::unique_lock<std::shared_mutex> lock(templates_mu_);
  if (sealed()) {
    return Status::FailedPrecondition(
        "template registry is sealed (queries already executed); register "
        "all templates before serving");
  }
  if (!templates_.emplace(tmpl.name, std::move(state)).second) {
    return Status::AlreadyExists("template " + tmpl.name);
  }
  return Status::OK();
}

Result<PpcFramework::TemplateState*> PpcFramework::FindTemplate(
    const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(templates_mu_);
  auto it = templates_.find(name);
  if (it == templates_.end()) {
    return Status::NotFound("template " + name + " is not registered");
  }
  return it->second.get();
}

Result<PpcFramework::QueryReport> PpcFramework::ExecuteInstance(
    const QueryInstance& instance) {
  Seal();
  PPC_ASSIGN_OR_RETURN(TemplateState * state,
                       FindTemplate(instance.template_name));
  PPC_ASSIGN_OR_RETURN(std::vector<double> point,
                       state->mapper->ToPlanSpacePoint(instance));
  return ExecuteAtPoint(instance.template_name, point);
}

Result<PpcFramework::QueryReport> PpcFramework::ExecuteAtPoint(
    const std::string& template_name, const std::vector<double>& point) {
  Seal();
  PPC_ASSIGN_OR_RETURN(TemplateState * state, FindTemplate(template_name));
  QueryReport report;

  // --- Predict ---
  auto predict_start = Clock::now();
  OnlinePpcPredictor::Decision decision = state->online->Decide(point);
  std::shared_ptr<const PlanNode> cached_plan;
  if (decision.use_prediction) {
    cached_plan = plan_cache_.Get(decision.prediction.plan);
  }
  report.predict_micros = MicrosSince(predict_start);

  if (decision.use_prediction && cached_plan != nullptr) {
    // --- Execute the predicted cached plan ---
    report.used_prediction = true;
    report.cache_hit = true;
    report.executed_plan = decision.prediction.plan;
    PPC_ASSIGN_OR_RETURN(
        report.execution_cost,
        simulator_.Execute(state->prepared, *cached_plan, point));

    // --- Negative feedback ---
    auto feedback_start = Clock::now();
    const bool suspected = state->online->ReportPredictionExecuted(
        point, decision.prediction, report.execution_cost);
    report.predict_micros += MicrosSince(feedback_start);
    if (suspected) {
      report.negative_feedback_triggered = true;
      auto opt_start = Clock::now();
      PPC_ASSIGN_OR_RETURN(OptimizationResult opt,
                           optimizer_.Optimize(state->prepared, point));
      report.optimize_micros = MicrosSince(opt_start);
      report.optimizer_invoked = true;
      report.optimal_plan = opt.plan_id;
      // The truth point corrects the histograms; the query itself was
      // already answered by the (suspect) cached plan.
      PPC_ASSIGN_OR_RETURN(
          double true_cost,
          simulator_.Execute(state->prepared, *opt.plan, point));
      state->online->ObserveOptimized(
          LabeledPoint{point, opt.plan_id, true_cost});
      plan_cache_.Put(opt.plan_id, std::move(opt.plan));
    }
    // Refresh the cache's eviction signal for this plan.
    plan_cache_.SetPrecisionScore(
        report.executed_plan,
        state->online->PlanPrecision(report.executed_plan));
    return report;
  }

  // --- Optimize (NULL prediction, cache miss, or random invocation) ---
  auto opt_start = Clock::now();
  PPC_ASSIGN_OR_RETURN(OptimizationResult opt,
                       optimizer_.Optimize(state->prepared, point));
  report.optimize_micros = MicrosSince(opt_start);
  report.optimizer_invoked = true;
  report.optimal_plan = opt.plan_id;
  report.executed_plan = opt.plan_id;
  PPC_ASSIGN_OR_RETURN(report.execution_cost,
                       simulator_.Execute(state->prepared, *opt.plan, point));
  state->online->ObserveOptimized(
      LabeledPoint{point, opt.plan_id, report.execution_cost});
  plan_cache_.Put(opt.plan_id, std::move(opt.plan));
  return report;
}

const OnlinePpcPredictor* PpcFramework::online_predictor(
    const std::string& template_name) const {
  std::shared_lock<std::shared_mutex> lock(templates_mu_);
  auto it = templates_.find(template_name);
  return it == templates_.end() ? nullptr : it->second->online.get();
}

}  // namespace ppc
