#include "ppc/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>

namespace ppc {

namespace {

/// Index of the bucket whose range contains `micros`. Computed with a log
/// instead of a linear scan; clamped so out-of-range values land in the
/// first/last bucket.
size_t BucketIndex(double micros) {
  if (micros <= LatencyHistogram::kFirstBucketUs) return 0;
  const double idx = std::log(micros / LatencyHistogram::kFirstBucketUs) /
                     std::log(LatencyHistogram::kGrowth);
  if (idx >= static_cast<double>(LatencyHistogram::kBucketCount - 1)) {
    return LatencyHistogram::kBucketCount - 1;
  }
  return static_cast<size_t>(idx) + 1;
}

}  // namespace

double LatencyHistogram::BucketUpperBoundUs(size_t i) {
  return kFirstBucketUs * std::pow(kGrowth, static_cast<double>(i));
}

void LatencyHistogram::Record(double micros) {
  if (!(micros > 0.0)) micros = 0.0;  // also catches NaN
  buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(micros * 1e3),
                       std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::TakeSnapshot() const {
  std::array<uint64_t, kBucketCount> counts;
  for (size_t i = 0; i < kBucketCount; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  Snapshot snap;
  // Derive the total from the bucket copy, not count_: under concurrent
  // Record() the two can be transiently skewed, and percentiles must be
  // computed against the population actually captured in `counts`.
  for (uint64_t c : counts) snap.count += c;
  snap.sum_us =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) / 1e3;
  if (snap.count == 0) return snap;
  snap.mean_us = snap.sum_us / static_cast<double>(snap.count);

  auto percentile = [&counts, &snap](double p) {
    const double target = p * static_cast<double>(snap.count);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kBucketCount; ++i) {
      if (counts[i] == 0) continue;
      const uint64_t before = cumulative;
      cumulative += counts[i];
      if (static_cast<double>(cumulative) >= target) {
        const double lo = i == 0 ? 0.0 : BucketUpperBoundUs(i - 1);
        const double hi = BucketUpperBoundUs(i);
        const double frac = (target - static_cast<double>(before)) /
                            static_cast<double>(counts[i]);
        return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      }
    }
    return BucketUpperBoundUs(kBucketCount - 1);
  };
  snap.p50_us = percentile(0.50);
  snap.p95_us = percentile(0.95);
  snap.p99_us = percentile(0.99);
  return snap;
}

MetricsCounter& MetricsRegistry::counter(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<MetricsCounter>();
  return *slot;
}

MetricsGauge& MetricsRegistry::gauge(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<MetricsGauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  std::shared_lock<std::shared_mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->TakeSnapshot());
  }
  return snap;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string MetricsRegistry::Snapshot::ToJson() const {
  std::string out = "{\"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ", ";
    AppendJsonString(counters[i].first, &out);
    out += ": " + std::to_string(counters[i].second);
  }
  out += "}, \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out += ", ";
    AppendJsonString(gauges[i].first, &out);
    out += ": " + JsonNumber(gauges[i].second);
  }
  out += "}, \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) out += ", ";
    AppendJsonString(histograms[i].first, &out);
    const LatencyHistogram::Snapshot& h = histograms[i].second;
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum_us\": " + JsonNumber(h.sum_us);
    out += ", \"mean_us\": " + JsonNumber(h.mean_us);
    out += ", \"p50_us\": " + JsonNumber(h.p50_us);
    out += ", \"p95_us\": " + JsonNumber(h.p95_us);
    out += ", \"p99_us\": " + JsonNumber(h.p99_us);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace ppc
