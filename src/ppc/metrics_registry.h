#ifndef PPC_PPC_METRICS_REGISTRY_H_
#define PPC_PPC_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace ppc {

/// Runtime observability for the serving path (ROADMAP north-star: the
/// paper's Sec. IV-E windowed estimators *are* an observability loop, but
/// until now nothing exposed them — or the framework's own outcome
/// accounting — at runtime).
///
/// Naming scheme: dot-separated lowercase paths,
/// `<subsystem>.<event>[.<detail>]` (e.g. "framework.predictions.evicted",
/// "cache.evictions.precision"). Latency histograms are suffixed with the
/// unit: "framework.predict_us".
///
/// Thread safety / lock freedom: incrementing a counter or recording a
/// latency is a handful of relaxed atomic adds — no mutex, no allocation —
/// so instrumentation never serializes concurrent serving threads.
/// Get-or-create lookups take the registry's shared_mutex; hot paths are
/// expected to resolve their instruments once (the returned references are
/// stable for the registry's lifetime) and hold the pointers.

/// Monotonic event counter. All operations are lock-free.
class MetricsCounter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge for non-monotonic signals (windowed precision/recall,
/// generation ids). The double payload is stored bit-cast in a uint64
/// atomic, so Set/value are single relaxed atomic ops — same lock-free
/// contract as MetricsCounter.
class MetricsGauge {
 public:
  void Set(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double value() const {
    const uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  std::atomic<uint64_t> bits_{0};  // 0 bits == 0.0
};

/// Fixed-bucket latency histogram over microseconds.
///
/// Buckets are geometric: bucket i covers
/// [kFirstBucketUs * kGrowth^i, kFirstBucketUs * kGrowth^(i+1)), with the
/// first bucket absorbing everything below and the last everything above —
/// the span covers ~0.05 us to ~20 s, the full range a predict or optimize
/// call can plausibly take. Record() is two relaxed atomic adds (lock-free);
/// percentiles are bucket-resolution approximations (exact to within one
/// bucket's width, i.e. a kGrowth factor), computed by linear interpolation
/// inside the selected bucket.
class LatencyHistogram {
 public:
  static constexpr size_t kBucketCount = 64;
  static constexpr double kFirstBucketUs = 0.05;
  static constexpr double kGrowth = 1.40;

  /// Records one latency observation (negative values clamp to 0).
  void Record(double micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Point-in-time view of the histogram; percentiles are precomputed so
  /// the snapshot is internally consistent.
  struct Snapshot {
    uint64_t count = 0;
    double sum_us = 0.0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
  };

  Snapshot TakeSnapshot() const;

  /// Inclusive upper bound of bucket `i` in microseconds.
  static double BucketUpperBoundUs(size_t i);

 private:
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  /// Sum in nanoseconds so a plain integer atomic suffices (no atomic
  /// double RMW); overflows after ~580 years of accumulated latency.
  std::atomic<uint64_t> sum_nanos_{0};
};

/// Process-wide named instrument registry. Counter/histogram handles are
/// created on first use and live as long as the registry; concurrent
/// get-or-create calls for the same name return the same instrument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. The returned reference is stable for the registry's
  /// lifetime — resolve once, then increment lock-free.
  MetricsCounter& counter(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);
  MetricsGauge& gauge(const std::string& name);

  /// Point-in-time dump of every registered instrument, sorted by name.
  /// Instruments are read without pausing writers, so a snapshot taken
  /// under concurrent load is per-instrument consistent (each counter /
  /// histogram is read atomically-enough) but not globally atomic across
  /// instruments — the standard Prometheus-style contract.
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, LatencyHistogram::Snapshot>>
        histograms;

    /// {"counters": {...}, "gauges": {...},
    ///  "histograms": {name: {count, sum_us, ...}}}
    std::string ToJson() const;
  };

  Snapshot TakeSnapshot() const;

 private:
  /// Guards the maps only; the instruments themselves are lock-free.
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<MetricsCounter>> counters_;
  std::map<std::string, std::unique_ptr<MetricsGauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// Appends `s` to `out` as a double-quoted JSON string (escapes quotes,
/// backslashes and control characters).
void AppendJsonString(const std::string& s, std::string* out);

/// Formats a finite double as a JSON-legal number (NaN/inf become 0, which
/// JSON cannot represent).
std::string JsonNumber(double v);

}  // namespace ppc

#endif  // PPC_PPC_METRICS_REGISTRY_H_
