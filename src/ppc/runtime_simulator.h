#ifndef PPC_PPC_RUNTIME_SIMULATOR_H_
#define PPC_PPC_RUNTIME_SIMULATOR_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "ppc/online_predictor.h"
#include "ppc/plan_cache.h"
#include "workload/query_template.h"

namespace ppc {

/// Plan-caching strategies compared in the end-to-end runtime experiment
/// (paper Sec. V-C / Fig. 13).
enum class CachingStrategy {
  /// Invoke the optimizer for every query instance.
  kAlwaysOptimize,
  /// Conventional plan caching: the plan optimized for the first instance
  /// (the least-specific-cost plan) is reused for every later instance.
  kConventionalCache,
  /// Robust query processing baseline (paper Sec. VI-A): one up-front
  /// selection of the minimum-average-cost plan over a uniform sample of
  /// the plan space, then reused for every instance. The eager selection
  /// cost is charged to the run.
  kRobustCache,
  /// The paper's contribution: ONLINE-APPROXIMATE-LSH-HISTOGRAMS.
  kParametricCache,
  /// Hypothetical predictor with 100% precision and recall (IDEAL): the
  /// optimal plan is always available at zero optimization cost.
  kIdeal,
};

const char* CachingStrategyName(CachingStrategy strategy);

/// Aggregate outcome of one simulated run.
struct RuntimeSimResult {
  CachingStrategy strategy = CachingStrategy::kAlwaysOptimize;
  size_t queries = 0;
  size_t optimizer_calls = 0;
  size_t predictions_used = 0;
  /// Wall-clock seconds measured inside the optimizer.
  double optimize_seconds = 0.0;
  /// Wall-clock seconds measured inside the predictor (prediction +
  /// feedback bookkeeping).
  double predict_seconds = 0.0;
  /// Execution cost converted to seconds via cost_to_seconds.
  double execute_seconds = 0.0;
  /// Sum of executed-cost / optimal-cost per query (>= 1).
  double suboptimality_sum = 0.0;

  double TotalSeconds() const {
    return optimize_seconds + predict_seconds + execute_seconds;
  }
  double MeanSuboptimality() const {
    return queries == 0 ? 0.0
                        : suboptimality_sum / static_cast<double>(queries);
  }
};

/// Replays one workload (a sequence of plan-space points for a single
/// template) under one caching strategy, charging measured optimizer and
/// predictor wall time plus simulated execution time (the paper's
/// out-of-engine simulation methodology: prototype timings are an upper
/// bound on framework overhead, execution costs come from the cost model
/// replayed at the true point).
class RuntimeSimulator {
 public:
  struct Options {
    /// Conversion from cost-model units to seconds of execution.
    double cost_to_seconds = 1e-5;
    /// Configuration of the PPC strategy's online predictor.
    OnlinePpcPredictor::Config online;
    size_t plan_cache_capacity = 64;
    CacheEvictionPolicy cache_policy =
        CacheEvictionPolicy::kPrecisionThenLru;
    /// Sample points for the kRobustCache up-front selection.
    size_t robust_sample_count = 100;
    uint64_t seed = 1234;
  };

  RuntimeSimulator(const Catalog* catalog, QueryTemplate tmpl,
                   Options options);

  /// Runs the workload under `strategy` from a cold start.
  Result<RuntimeSimResult> Run(
      CachingStrategy strategy,
      const std::vector<std::vector<double>>& workload) const;

 private:
  const Catalog* catalog_;
  QueryTemplate tmpl_;
  Options options_;
};

}  // namespace ppc

#endif  // PPC_PPC_RUNTIME_SIMULATOR_H_
