#ifndef PPC_PPC_METRICS_H_
#define PPC_PPC_METRICS_H_

#include <cstddef>

#include "plan/fingerprint.h"

namespace ppc {

/// Accumulates prediction outcomes and reports precision and recall under
/// the paper's Definition 4:
///   precision = correct / non-NULL predictions,
///   recall    = correct / all predictions (NULL counts as a miss).
class MetricsAccumulator {
 public:
  /// Records one prediction against ground truth. A NULL prediction passes
  /// `predicted == kNullPlanId`.
  void Record(PlanId predicted, PlanId actual);

  double Precision() const;
  double Recall() const;

  size_t total() const { return total_; }
  size_t answered() const { return answered_; }
  size_t correct() const { return correct_; }
  /// Non-NULL predictions that named the wrong plan.
  size_t wrong() const { return answered_ - correct_; }

  /// Merges another accumulator into this one.
  void Merge(const MetricsAccumulator& other);

  void Reset();

 private:
  size_t total_ = 0;
  size_t answered_ = 0;
  size_t correct_ = 0;
};

}  // namespace ppc

#endif  // PPC_PPC_METRICS_H_
