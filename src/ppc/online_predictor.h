#ifndef PPC_PPC_ONLINE_PREDICTOR_H_
#define PPC_PPC_ONLINE_PREDICTOR_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "ppc/lsh_histograms_predictor.h"
#include "ppc/sliding_window.h"

namespace ppc {

/// ONLINE-APPROXIMATE-LSH-HISTOGRAMS: the online plan-prediction framework
/// of paper Sec. IV-D/IV-E for a single query template.
///
/// The sample pool starts empty and is populated lazily from optimizer
/// feedback. Per query the flow is:
///
///   1. Decide(x): ask the histogram predictor for a plan. Even on a
///      non-NULL prediction, the optimizer is invoked anyway with a small
///      probability (a function of the mean invocation probability and the
///      prediction's confidence) to keep harvesting ground truth.
///   2. If the decision was to optimize: the caller optimizes, executes,
///      and feeds the labeled point back via ObserveOptimized — the only
///      path that inserts into the sample pool (no positive feedback;
///      Sec. IV-D explains why predictions are never self-inserted).
///   3. If the decision was to use the prediction: the caller executes the
///      predicted plan and reports the measured cost via
///      ReportPredictionExecuted. Negative feedback compares it against
///      the histogram's average cost for that plan near x (plan cost
///      predictability, Assumption 2); a relative error beyond the epsilon
///      bound classifies the prediction as wrong, and the caller is told
///      to invoke the optimizer immediately — the true point then lands in
///      the histograms, eroding support for the mispredicted plan.
///
/// Windowed precision/recall estimators (Sec. IV-E) are fed by the same
/// cost-based binary correctness estimate; when the windowed template
/// precision drops below the reset threshold, every histogram for the
/// template is dropped and sampling restarts — the drift response of
/// Sec. V-D.
///
/// Thread safety: Decide / ObserveOptimized / ReportPredictionExecuted may
/// be called concurrently. Histogram reads run under the predictor's
/// shared lock so concurrent sessions predict in parallel; the tracker,
/// RNG and drift logic serialize briefly under this object's mutex (lock
/// order: this mutex, then the predictor's — never the reverse). The raw
/// tracker()/predictor() accessors return unsynchronized references; use
/// TemplatePrecision()/PlanPrecision() from concurrent contexts.
class OnlinePpcPredictor {
 public:
  struct Config {
    LshHistogramsPredictor::Config predictor;
    /// Negative feedback (cost-based misprediction detection) on/off.
    bool negative_feedback = true;
    /// Epsilon of the plan-cost-predictability test (paper uses 0.25).
    double cost_error_bound = 0.25;
    /// Mean random optimizer-invocation probability (0 disables).
    double mean_invocation_probability = 0.0;
    /// Window size k of the precision/recall estimators.
    size_t estimator_window = 100;
    /// Drop all histograms when windowed precision falls below this
    /// (<= 0 disables drift resets).
    double reset_precision_threshold = 0.0;

    /// --- Positive feedback (paper Sec. VII, future work) ---
    /// When enabled, an executed prediction that *passes* the cost
    /// predictability test is itself inserted into the sample pool,
    /// shortening the warm-up period and raising recall. Guard rails
    /// against the paper's feared "avalanche of false positive input":
    /// only predictions with confidence >= positive_feedback_confidence
    /// qualify, and self-labeled points are capped at
    /// positive_feedback_max_ratio x the optimizer-sourced sample count.
    bool positive_feedback = false;
    double positive_feedback_confidence = 0.95;
    double positive_feedback_max_ratio = 1.0;

    uint64_t seed = 31;
  };

  /// Outcome of Decide().
  struct Decision {
    /// The predictor's output (may be NULL).
    Prediction prediction;
    /// True: execute prediction.plan. False: invoke the optimizer.
    bool use_prediction = false;
    /// True when a non-NULL prediction was overridden by a random
    /// optimizer invocation.
    bool random_invocation = false;
  };

  explicit OnlinePpcPredictor(Config config);

  /// Builds the online layer around an already-constructed (typically
  /// refit-and-backfilled) histogram predictor instead of a fresh empty
  /// one — the generation-handoff path (DESIGN.md §17). The tracker
  /// windows start empty on purpose: they must measure the new
  /// generation's serving quality, not inherit the degraded window that
  /// triggered the refit. `config.predictor` is overwritten with the
  /// passed predictor's config so the two can never disagree.
  OnlinePpcPredictor(Config config, LshHistogramsPredictor predictor);

  /// Copies the lifetime event counters (resets, insertions, feedback
  /// totals, random invocations) from `prev` so a generation handoff does
  /// not zero the template's cumulative accounting. Call before the new
  /// predictor is published; not synchronized against concurrent use of
  /// *this*.
  void InheritLifetimeCounters(const OnlinePpcPredictor& prev);

  /// Step 1: decide how to run the query at plan-space point `x`.
  Decision Decide(const std::vector<double>& x);

  /// Step 2/3 feedback: the optimizer ran at `point.coords` and returned
  /// `point.plan` with execution cost `point.cost`.
  void ObserveOptimized(const LabeledPoint& point);

  /// Step 3 feedback: the predicted plan was executed with `actual_cost`.
  /// Returns true when negative feedback suspects a misprediction — the
  /// caller must then invoke the optimizer and call ObserveOptimized.
  bool ReportPredictionExecuted(const std::vector<double>& x,
                                const Prediction& prediction,
                                double actual_cost);

  /// Alternate step-3 feedback for a non-NULL prediction that was *not*
  /// executed but whose ground truth is known exactly — e.g. the predicted
  /// plan had been evicted from the cache, so the optimizer ran anyway and
  /// revealed the true plan. Feeds the same windowed precision/recall
  /// estimators (paper Definition 4) with exact — not cost-estimated —
  /// correctness; skipping these events would overcount precision by
  /// omission.
  void ReportPredictionOutcome(const Prediction& prediction,
                               PlanId true_plan);

  /// Warm-start (replication): replaces the histogram predictor's learned
  /// state with `snapshot`'s, in place, so a joining shard serves from a
  /// leader's densities instead of cold-learning. The tracker, RNG and
  /// feedback counters are deliberately left untouched — precision/recall
  /// windows measure *this* replica's serving quality, not the leader's.
  /// Fails with InvalidArgument on any predictor-config mismatch.
  Status WarmStart(const LshHistogramsPredictor& snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    return predictor_.AdoptState(snapshot);
  }

  /// Thread-safe snapshots of the tracker's estimates.
  double TemplatePrecision() const;
  double PlanPrecision(PlanId plan) const;

  /// The sliding-window drift signal (Sec. IV-E), read atomically under
  /// one lock acquisition. The fullness flags distinguish a genuinely
  /// degraded window from warm-up noise — the retune trigger and the
  /// drift.* gauges both act only on full windows. They gate different
  /// estimates: `window_full` is the made-prediction (precision) window,
  /// while `beta_window_full` is the every-query (beta/recall) window.
  /// When the predictor answers NULL across the board the precision
  /// window stops filling entirely, so a recall-collapse trigger gated on
  /// `window_full` would deadlock — it must use `beta_window_full`.
  struct WindowedSignal {
    double precision = 0.0;
    double recall = 0.0;
    double beta = 0.0;
    bool window_full = false;
    bool beta_window_full = false;
  };
  WindowedSignal GetWindowedSignal() const;

  /// Per-template health snapshot (thread-safe): the tracker's windowed
  /// estimates plus the predictor's lifetime event counters, read under
  /// one lock acquisition so precision/recall/beta are mutually
  /// consistent.
  struct Stats {
    double precision = 0.0;
    double recall = 0.0;
    double beta = 0.0;
    size_t resets = 0;
    size_t random_invocations = 0;
    size_t optimizer_insertions = 0;
    size_t positive_feedback_insertions = 0;
    /// Prediction outcomes reported so far (executed predictions judged by
    /// the cost test, plus exact outcomes via ReportPredictionOutcome).
    uint64_t feedback_positive = 0;
    uint64_t feedback_negative = 0;
  };
  Stats GetStats() const;

  /// Unsynchronized references — safe only when no concurrent mutators
  /// run (tests, single-threaded experiment harnesses).
  const LshHistogramsPredictor& predictor() const { return predictor_; }
  const PrecisionRecallTracker& tracker() const { return tracker_; }
  const Config& config() const { return config_; }

  /// Number of drift resets performed so far.
  size_t reset_count() const {
    return reset_count_.load(std::memory_order_relaxed);
  }
  /// Number of random optimizer invocations issued so far.
  size_t random_invocations() const {
    return random_invocations_.load(std::memory_order_relaxed);
  }
  /// Self-labeled points inserted via positive feedback so far.
  size_t positive_feedback_insertions() const {
    return positive_feedback_insertions_.load(std::memory_order_relaxed);
  }
  /// Optimizer-sourced points inserted so far.
  size_t optimizer_insertions() const {
    return optimizer_insertions_.load(std::memory_order_relaxed);
  }
  /// Prediction outcomes judged correct / incorrect so far.
  uint64_t feedback_positive() const {
    return feedback_positive_.load(std::memory_order_relaxed);
  }
  uint64_t feedback_negative() const {
    return feedback_negative_.load(std::memory_order_relaxed);
  }

 private:
  /// Requires mu_ held.
  void MaybeResetLocked();

  Config config_;
  LshHistogramsPredictor predictor_;
  /// Guards tracker_ and rng_. Acquired before the predictor's internal
  /// lock when both are needed.
  mutable std::mutex mu_;
  PrecisionRecallTracker tracker_;
  Rng rng_;
  std::atomic<size_t> reset_count_{0};
  std::atomic<size_t> random_invocations_{0};
  std::atomic<size_t> positive_feedback_insertions_{0};
  std::atomic<size_t> optimizer_insertions_{0};
  std::atomic<uint64_t> feedback_positive_{0};
  std::atomic<uint64_t> feedback_negative_{0};
};

}  // namespace ppc

#endif  // PPC_PPC_ONLINE_PREDICTOR_H_
