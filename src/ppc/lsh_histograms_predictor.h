#ifndef PPC_PPC_LSH_HISTOGRAMS_PREDICTOR_H_
#define PPC_PPC_LSH_HISTOGRAMS_PREDICTOR_H_

#include <map>
#include <shared_mutex>
#include <vector>

#include "clustering/predictor.h"
#include "lsh/transform.h"
#include "ppc/plan_synopsis.h"

namespace ppc {

/// The APPROXIMATE-LSH-HISTOGRAMS algorithm (paper Sec. IV-C): like
/// APPROXIMATE-LSH, but instead of a grid of cells, each intermediate
/// space's per-plan point distribution is linearized with a Z-order curve
/// and summarized in a bounded-bucket database histogram (count + average
/// cost per bucket). Density queries become histogram range queries on
/// [T_ij(x) - delta, T_ij(x) + delta], where 2*delta equals the volume of
/// the radius-d hypersphere.
///
/// Two Z-order artifacts are countered (Sec. IV-C): *noise elimination*
/// discounts a fixed fraction of the total sample count from every plan's
/// local density (distant points mapped into the queried range), and the
/// *confidence sanity check* suppresses predictions where bucket
/// consolidation makes a plan's support ambiguous.
///
/// Space: t * n * b_h * 12 bytes. Prediction: O(t * n * b_h), constant in
/// the sample count |X|.
///
/// Thread safety: reads (Predict, EstimateCost, Serialize, accessors) take
/// a shared lock; writes (Insert, Reset) take an exclusive lock, so many
/// concurrent sessions can predict against one template's histograms while
/// optimizer feedback briefly serializes. Moving or copying a predictor is
/// NOT synchronized with concurrent use.
class LshHistogramsPredictor : public PlanPredictor {
 public:
  struct Config {
    /// Plan-space dimensionality r.
    int dimensions = 2;
    /// Number of randomized transformations t.
    int transform_count = 5;
    /// Intermediate-space dimensionality s; <= 0 picks the paper default.
    int output_dims = 0;
    /// Grid resolution per axis as a power of two.
    int bits_per_dim = 5;
    /// Maximum buckets per database histogram (the paper's b_h).
    size_t histogram_buckets = 40;
    /// Query radius d.
    double radius = 0.1;
    /// Confidence threshold gamma.
    double confidence_threshold = 0.7;
    /// Noise elimination: fraction of the total sample count subtracted
    /// from each plan's local density estimate; <= 0 disables.
    double noise_fraction = 0.0;
    /// Z-range querying mode. false: the paper's single interval
    /// [T(x) - delta, T(x) + delta]. true (extension): the query box is
    /// decomposed into up to max_z_intervals exact curve ranges via
    /// quadtree descent. Exact ranges stop distant cells that the curve
    /// interleaves into the single smeared interval from contributing
    /// counts (the flip side of Sec. IV-C's contiguity artifacts), which
    /// measurably raises precision at some cost in recall
    /// (bench_ext_zorder_decomposition).
    bool interval_decomposition = false;
    size_t max_z_intervals = 8;
    StreamingHistogram::MergePolicy merge_policy =
        StreamingHistogram::MergePolicy::kMinVarianceIncrease;
    uint64_t seed = 23;
    /// Transform generation (DESIGN.md §17). Generation 0 is the
    /// construction-time fit; each adaptive refit installs generation+1.
    /// The ensemble seed is derived from (seed, transform_generation), so
    /// distinct generations draw independent transforms, and histograms
    /// from one generation can never be adopted into another.
    uint32_t transform_generation = 0;
    /// Per-dimension plan-space ranges the transforms normalize onto the
    /// unit cube before hashing (see TransformConfig::input_lo). Empty =
    /// identity, the paper's fixed fit; a refit zooms these onto the
    /// observed workload span. Both must have exactly `dimensions`
    /// entries when non-empty, with input_lo[i] < input_hi[i].
    std::vector<double> input_lo;
    std::vector<double> input_hi;
  };

  explicit LshHistogramsPredictor(Config config);
  LshHistogramsPredictor(Config config,
                         const std::vector<LabeledPoint>& sample);

  LshHistogramsPredictor(const LshHistogramsPredictor& other);
  LshHistogramsPredictor(LshHistogramsPredictor&& other) noexcept;
  LshHistogramsPredictor& operator=(const LshHistogramsPredictor& other);
  LshHistogramsPredictor& operator=(LshHistogramsPredictor&& other) noexcept;

  Prediction Predict(const std::vector<double>& x) const override;

  /// Batched Predict over `count` points stored contiguously row-major
  /// (point p occupies points[p*r .. (p+1)*r) with r = config().dimensions).
  /// Returns one Prediction per point, in order, bit-identical to calling
  /// Predict on each point separately. The batch pays the shared lock
  /// once, applies each randomized transform as one matrix-times-batch
  /// kernel, and walks each plan histogram's buckets once per batch
  /// instead of once per point (range queries grouped per intermediate
  /// space).
  std::vector<Prediction> PredictBatch(const double* points,
                                       size_t count) const;

  /// PredictBatch into caller-provided storage (`out` holds `count`
  /// Predictions). This is the zero-allocation serving entry point: all
  /// scratch comes from a thread-local per-request arena plus
  /// capacity-retaining thread-local buffers, so after a warm-up call the
  /// whole prediction performs no heap allocation (verified by the
  /// allocation-counting test; in interval_decomposition mode the exact
  /// Z-range decomposition still allocates its interval lists).
  void PredictBatchInto(const double* points, size_t count,
                        Prediction* out) const;

  void Insert(const LabeledPoint& point) override;
  uint64_t SpaceBytes() const override;
  std::string Name() const override { return "APPROXIMATE-LSH-HISTOGRAMS"; }

  /// Estimated average execution cost of `plan` near `x` (the input to the
  /// negative-feedback misprediction test). 0 when the plan has no support
  /// near x.
  double EstimateCost(const std::vector<double>& x, PlanId plan) const;

  /// Drops every histogram and restarts sampling from scratch (paper
  /// Sec. IV-E: drift response).
  void Reset();

  /// Binary snapshot of the full predictor state (configuration +
  /// per-plan synopses). The randomized transforms are reconstructed
  /// deterministically from the serialized seed, so a restored predictor
  /// answers every query identically to the original. Enables a plan
  /// cache whose learned state survives server restarts and, via
  /// PredictorState, replicates across shards. Format v2 (DESIGN.md
  /// §15): magic, format version, length-prefixed config and data
  /// sections, trailing FNV-1a checksum over everything preceding it.
  std::string Serialize() const;

  /// Rebuilds a predictor from Serialize() output. Fails with
  /// InvalidArgument on malformed, truncated, corrupted, or
  /// stale-version input (the unversioned v1 layout is rejected, not
  /// misparsed).
  static Result<LshHistogramsPredictor> Restore(const std::string& bytes);

  /// Replaces this predictor's learned state (synopses + sample count)
  /// with `snapshot`'s, in place under the write lock, so references held
  /// by concurrent readers stay valid. The two configurations must be
  /// identical — the transforms are derived from (config, seed), and
  /// adopting histograms built under different transforms would silently
  /// answer garbage. Fails with InvalidArgument on any config mismatch.
  /// This is the warm-start path: a joining shard restores a leader
  /// snapshot and adopts it into its registered predictors.
  Status AdoptState(const LshHistogramsPredictor& snapshot);

  size_t TotalSamples() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return total_samples_;
  }
  size_t DistinctPlans() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return synopses_.size();
  }
  const Config& config() const { return config_; }
  /// Transform generation this predictor's ensemble was drawn for.
  uint32_t transform_generation() const {
    return config_.transform_generation;
  }

  /// Curve intervals to query for `x`, one list per transform (a single
  /// interval in the paper's mode, a decomposition in extension mode).
  /// All intervals lie within the histogram domain [0, 1]. Public for
  /// tests and diagnostics.
  std::vector<std::vector<ZInterval>> QueryRanges(
      const std::vector<double>& x) const;

  /// Batched QueryRanges over `count` row-major points. Note the
  /// transform-major layout — result[i][p] is point p's interval list in
  /// intermediate space i — chosen so downstream histogram queries can be
  /// grouped per intermediate space. Public for tests and diagnostics.
  std::vector<std::vector<std::vector<ZInterval>>> QueryRangesBatch(
      const double* points, size_t count) const;

 private:
  Prediction PredictLocked(const std::vector<double>& x) const;

  /// Parses the checksum-verified config and data section payloads. Kept
  /// separate from Restore so envelope validation (magic, version,
  /// section lengths, checksum) and content validation cannot interleave.
  static Result<LshHistogramsPredictor> RestoreParsed(
      const std::string& config_bytes, const std::string& data_bytes);

  Config config_;
  TransformEnsemble transforms_;
  std::map<PlanId, PlanSynopsis> synopses_;
  size_t total_samples_ = 0;
  /// Guards synopses_ and total_samples_ (config_ and transforms_ are
  /// immutable after construction).
  mutable std::shared_mutex mu_;
};

}  // namespace ppc

#endif  // PPC_PPC_LSH_HISTOGRAMS_PREDICTOR_H_
