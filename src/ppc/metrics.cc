#include "ppc/metrics.h"

namespace ppc {

void MetricsAccumulator::Record(PlanId predicted, PlanId actual) {
  ++total_;
  if (predicted == kNullPlanId) return;
  ++answered_;
  if (predicted == actual) ++correct_;
}

double MetricsAccumulator::Precision() const {
  return answered_ == 0 ? 0.0
                        : static_cast<double>(correct_) /
                              static_cast<double>(answered_);
}

double MetricsAccumulator::Recall() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(correct_) /
                           static_cast<double>(total_);
}

void MetricsAccumulator::Merge(const MetricsAccumulator& other) {
  total_ += other.total_;
  answered_ += other.answered_;
  correct_ += other.correct_;
}

void MetricsAccumulator::Reset() {
  total_ = 0;
  answered_ = 0;
  correct_ = 0;
}

}  // namespace ppc
