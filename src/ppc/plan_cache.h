#ifndef PPC_PPC_PLAN_CACHE_H_
#define PPC_PPC_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "plan/fingerprint.h"
#include "plan/plan_node.h"

namespace ppc {

/// Eviction policy of the plan cache.
enum class CacheEvictionPolicy {
  /// The paper's signal (Sec. I / IV-E: "performance of the clustering
  /// algorithm is monitored to help decide which plans to evict"): lowest
  /// windowed prediction precision first, ties broken by least-recent use.
  kPrecisionThenLru,
  /// Classic least-recently-used.
  kLru,
  /// Least-frequently-used, ties broken by least-recent use.
  kLfu,
};

const char* CacheEvictionPolicyName(CacheEvictionPolicy policy);

/// Bounded cache of physical plans keyed by PlanId, safe for concurrent
/// callers.
///
/// The key space is lock-striped into shards (PlanId hash -> shard), so
/// the hot path — Get on a cached plan — takes exactly one shard mutex.
/// Hit/miss/eviction counters and the use clock are atomics shared across
/// shards. Eviction keeps the exact global LRU/LFU/precision semantics of
/// the single-map cache by briefly locking every shard (in shard-index
/// order, the cache's one lock-ordering rule) and scanning for the victim;
/// evictions are rare relative to lookups, so the stripe win dominates.
///
/// Get returns a shared_ptr so a plan being executed on one thread cannot
/// be freed by a concurrent eviction or overwrite on another.
class PlanCache {
 public:
  /// `shard_count` is rounded up to a power of two.
  explicit PlanCache(
      size_t capacity,
      CacheEvictionPolicy policy = CacheEvictionPolicy::kPrecisionThenLru,
      size_t shard_count = kDefaultShardCount);

  /// Inserts (or refreshes) a plan. May evict. Overwriting an existing id
  /// resets its LFU frequency and precision score: the new plan is a fresh
  /// re-optimization and must not inherit the stale plan's eviction rank.
  void Put(PlanId id, std::unique_ptr<PlanNode> plan);

  /// Returns the cached plan or nullptr. Counts as a use. The returned
  /// pointer keeps the plan alive even if it is evicted concurrently.
  std::shared_ptr<const PlanNode> Get(PlanId id);

  /// True if present (does not count as a use).
  bool Contains(PlanId id) const;

  /// Reports the precision score used for eviction ranking (e.g.
  /// prec_k[P] from PrecisionRecallTracker). Unknown plans default to 1.0.
  void SetPrecisionScore(PlanId id, double score);

  /// The current eviction-ranking score of one plan (nullopt when absent).
  /// Does not count as a use.
  std::optional<double> PrecisionScore(PlanId id) const;

  /// Removes one plan (no-op when absent).
  void Erase(PlanId id);

  /// Drops everything (counters are retained).
  void Clear();

  size_t size() const { return size_.load(std::memory_order_acquire); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Evictions whose victim carried a degraded (< 1.0) precision score,
  /// i.e. the paper's monitoring signal — not mere recency — picked it.
  uint64_t precision_evictions() const {
    return precision_evictions_.load(std::memory_order_relaxed);
  }

  /// Per-shard and aggregate counters for the observability layer. The
  /// aggregate counters are read first, then each shard under its own
  /// lock, so the snapshot is per-field consistent but not a global
  /// atomic cut (fine for monitoring).
  struct ShardStats {
    size_t entries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t precision_evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
    std::vector<ShardStats> shards;
  };
  Stats GetStats() const;

  std::vector<PlanId> PlanIds() const;

  CacheEvictionPolicy policy() const { return policy_; }
  size_t shard_count() const { return shards_.size(); }

 private:
  static constexpr size_t kDefaultShardCount = 8;

  struct Entry {
    std::shared_ptr<const PlanNode> plan;
    double precision_score = 1.0;
    uint64_t last_use = 0;
    uint64_t uses = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<PlanId, Entry> entries;
    /// Per-shard lookup outcomes, guarded by mu (Get holds it anyway).
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  Shard& ShardFor(PlanId id) const;
  uint64_t Tick() { return clock_.fetch_add(1, std::memory_order_relaxed) + 1; }
  bool Worse(const Entry& cand, const Entry& best) const;
  /// Locks all shards (in index order) and evicts the global victim.
  /// Returns false when the cache is empty. Caller must hold no shard lock.
  bool EvictOne();

  size_t capacity_;
  CacheEvictionPolicy policy_;
  mutable std::vector<Shard> shards_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> clock_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> precision_evictions_{0};
};

}  // namespace ppc

#endif  // PPC_PPC_PLAN_CACHE_H_
