#ifndef PPC_PPC_PLAN_CACHE_H_
#define PPC_PPC_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "plan/fingerprint.h"
#include "plan/plan_node.h"

namespace ppc {

/// Eviction policy of the plan cache.
enum class CacheEvictionPolicy {
  /// The paper's signal (Sec. I / IV-E: "performance of the clustering
  /// algorithm is monitored to help decide which plans to evict"): lowest
  /// windowed prediction precision first, ties broken by least-recent use.
  kPrecisionThenLru,
  /// Classic least-recently-used.
  kLru,
  /// Least-frequently-used, ties broken by least-recent use.
  kLfu,
};

const char* CacheEvictionPolicyName(CacheEvictionPolicy policy);

/// Bounded cache of physical plans keyed by PlanId.
class PlanCache {
 public:
  explicit PlanCache(
      size_t capacity,
      CacheEvictionPolicy policy = CacheEvictionPolicy::kPrecisionThenLru);

  /// Inserts (or refreshes) a plan. May evict.
  void Put(PlanId id, std::unique_ptr<PlanNode> plan);

  /// Returns the cached plan or nullptr. Counts as a use.
  const PlanNode* Get(PlanId id);

  /// True if present (does not count as a use).
  bool Contains(PlanId id) const;

  /// Reports the precision score used for eviction ranking (e.g.
  /// prec_k[P] from PrecisionRecallTracker). Unknown plans default to 1.0.
  void SetPrecisionScore(PlanId id, double score);

  /// Removes one plan (no-op when absent).
  void Erase(PlanId id);

  /// Drops everything.
  void Clear();

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

  std::vector<PlanId> PlanIds() const;

  CacheEvictionPolicy policy() const { return policy_; }

 private:
  struct Entry {
    std::unique_ptr<PlanNode> plan;
    double precision_score = 1.0;
    uint64_t last_use = 0;
    uint64_t uses = 0;
  };

  void EvictOne();

  size_t capacity_;
  CacheEvictionPolicy policy_;
  std::map<PlanId, Entry> entries_;
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace ppc

#endif  // PPC_PPC_PLAN_CACHE_H_
