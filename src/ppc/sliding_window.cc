#include "ppc/sliding_window.h"

#include "common/macros.h"

namespace ppc {

SlidingWindowEstimator::SlidingWindowEstimator(size_t window_size)
    : window_size_(window_size) {
  PPC_CHECK(window_size >= 1);
}

void SlidingWindowEstimator::Record(bool success) {
  window_.push_back(success);
  if (success) ++successes_;
  if (window_.size() > window_size_) {
    if (window_.front()) --successes_;
    window_.pop_front();
  }
}

double SlidingWindowEstimator::Value() const {
  if (window_.empty()) return 0.0;
  return static_cast<double>(successes_) /
         static_cast<double>(window_.size());
}

void SlidingWindowEstimator::Clear() {
  window_.clear();
  successes_ = 0;
}

PrecisionRecallTracker::PrecisionRecallTracker(size_t window_size)
    : window_size_(window_size),
      template_precision_(window_size),
      beta_(window_size) {}

void PrecisionRecallTracker::RecordPrediction(PlanId plan, bool made,
                                              bool correct) {
  beta_.Record(made);
  if (!made) return;
  template_precision_.Record(correct);
  auto it = per_plan_.find(plan);
  if (it == per_plan_.end()) {
    it = per_plan_.emplace(plan, SlidingWindowEstimator(window_size_)).first;
  }
  it->second.Record(correct);
}

double PrecisionRecallTracker::PlanPrecision(PlanId plan) const {
  auto it = per_plan_.find(plan);
  if (it == per_plan_.end() || it->second.Count() == 0) return 1.0;
  return it->second.Value();
}

bool PrecisionRecallTracker::PrecisionBelow(double threshold) const {
  return template_precision_.Full() &&
         template_precision_.Value() < threshold;
}

void PrecisionRecallTracker::Clear() {
  template_precision_.Clear();
  beta_.Clear();
  per_plan_.clear();
}

}  // namespace ppc
