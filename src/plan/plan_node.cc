#include "plan/plan_node.h"

#include "common/macros.h"

namespace ppc {

const char* ScanMethodName(ScanMethod m) {
  switch (m) {
    case ScanMethod::kSeqScan:
      return "SeqScan";
    case ScanMethod::kIndexScan:
      return "IndexScan";
  }
  return "UnknownScan";
}

const char* JoinMethodName(JoinMethod m) {
  switch (m) {
    case JoinMethod::kBlockNestedLoop:
      return "BlockNestedLoopJoin";
    case JoinMethod::kIndexNestedLoop:
      return "IndexNestedLoopJoin";
    case JoinMethod::kHashJoin:
      return "HashJoin";
    case JoinMethod::kSortMergeJoin:
      return "SortMergeJoin";
  }
  return "UnknownJoin";
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  node->table = table;
  node->scan_method = scan_method;
  node->index_column = index_column;
  node->param_predicates = param_predicates;
  node->join_method = join_method;
  node->join_edge = join_edge;
  node->est_rows = est_rows;
  node->est_cost = est_cost;
  if (left) node->left = left->Clone();
  if (right) node->right = right->Clone();
  return node;
}

size_t PlanNode::OperatorCount() const {
  size_t count = 1;
  if (left) count += left->OperatorCount();
  if (right) count += right->OperatorCount();
  return count;
}

std::vector<std::string> PlanNode::Tables() const {
  std::vector<std::string> out;
  if (kind == Kind::kScan) {
    out.push_back(table);
  }
  if (left) {
    for (auto& t : left->Tables()) out.push_back(std::move(t));
  }
  if (right) {
    for (auto& t : right->Tables()) out.push_back(std::move(t));
  }
  return out;
}

std::unique_ptr<PlanNode> MakeSeqScan(std::string table,
                                      std::vector<int> param_predicates) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->table = std::move(table);
  node->scan_method = ScanMethod::kSeqScan;
  node->param_predicates = std::move(param_predicates);
  return node;
}

std::unique_ptr<PlanNode> MakeIndexScan(std::string table,
                                        std::string index_column,
                                        std::vector<int> param_predicates) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->table = std::move(table);
  node->scan_method = ScanMethod::kIndexScan;
  node->index_column = std::move(index_column);
  node->param_predicates = std::move(param_predicates);
  return node;
}

std::unique_ptr<PlanNode> MakeJoin(JoinMethod method, int join_edge,
                                   std::unique_ptr<PlanNode> left,
                                   std::unique_ptr<PlanNode> right) {
  PPC_DCHECK(left != nullptr && right != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kJoin;
  node->join_method = method;
  node->join_edge = join_edge;
  node->left = std::move(left);
  node->right = std::move(right);
  return node;
}

std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> child) {
  PPC_DCHECK(child != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kAggregate;
  node->left = std::move(child);
  return node;
}

}  // namespace ppc
