#ifndef PPC_PLAN_PLAN_NODE_H_
#define PPC_PLAN_PLAN_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ppc {

/// Access path used by a scan operator.
enum class ScanMethod {
  kSeqScan,
  kIndexScan,
};

/// Join algorithm used by a join operator.
enum class JoinMethod {
  kBlockNestedLoop,
  kIndexNestedLoop,
  kHashJoin,
  kSortMergeJoin,
};

const char* ScanMethodName(ScanMethod m);
const char* JoinMethodName(JoinMethod m);

/// A physical query plan node: "a tree of relational algebra operators, each
/// encapsulating some information about choice of algorithm and resource
/// allocation" (paper Sec. I).
///
/// Plan *identity* — what makes two plans "the same plan" for caching — is
/// the structural content only (operator kinds, methods, tables, index
/// choices, child order). Estimates (est_rows, est_cost) are annotations and
/// are excluded from the fingerprint.
struct PlanNode {
  enum class Kind {
    kScan,
    kJoin,
    kAggregate,
  };

  Kind kind = Kind::kScan;

  // --- kScan fields ---
  /// Base table scanned.
  std::string table;
  ScanMethod scan_method = ScanMethod::kSeqScan;
  /// For kIndexScan: the indexed column driving the access path.
  std::string index_column;
  /// Indices (into the query template's parameter list) of parameterized
  /// predicates applied at this scan.
  std::vector<int> param_predicates;

  // --- kJoin fields ---
  JoinMethod join_method = JoinMethod::kHashJoin;
  /// Index into the query template's join-edge list.
  int join_edge = -1;
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;

  // --- optimizer annotations (not part of plan identity) ---
  double est_rows = 0.0;
  double est_cost = 0.0;

  /// Deep copy (children cloned recursively).
  std::unique_ptr<PlanNode> Clone() const;

  /// Number of operators in the subtree rooted here.
  size_t OperatorCount() const;

  /// All base tables referenced in the subtree, in scan order.
  std::vector<std::string> Tables() const;
};

/// Convenience constructors.
std::unique_ptr<PlanNode> MakeSeqScan(std::string table,
                                      std::vector<int> param_predicates);
std::unique_ptr<PlanNode> MakeIndexScan(std::string table,
                                        std::string index_column,
                                        std::vector<int> param_predicates);
std::unique_ptr<PlanNode> MakeJoin(JoinMethod method, int join_edge,
                                   std::unique_ptr<PlanNode> left,
                                   std::unique_ptr<PlanNode> right);
std::unique_ptr<PlanNode> MakeAggregate(std::unique_ptr<PlanNode> child);

}  // namespace ppc

#endif  // PPC_PLAN_PLAN_NODE_H_
