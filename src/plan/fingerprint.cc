#include "plan/fingerprint.h"

#include <sstream>

namespace ppc {

namespace {

void Serialize(const PlanNode& node, std::ostringstream* os) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      *os << ScanMethodName(node.scan_method) << "(" << node.table;
      if (node.scan_method == ScanMethod::kIndexScan) {
        *os << " via " << node.index_column;
      }
      if (!node.param_predicates.empty()) {
        *os << " preds[";
        for (size_t i = 0; i < node.param_predicates.size(); ++i) {
          if (i) *os << ",";
          *os << node.param_predicates[i];
        }
        *os << "]";
      }
      *os << ")";
      break;
    case PlanNode::Kind::kJoin:
      *os << JoinMethodName(node.join_method) << "[e" << node.join_edge
          << "](";
      Serialize(*node.left, os);
      *os << ", ";
      Serialize(*node.right, os);
      *os << ")";
      break;
    case PlanNode::Kind::kAggregate:
      *os << "Aggregate(";
      Serialize(*node.left, os);
      *os << ")";
      break;
  }
}

void PrintIndented(const PlanNode& node, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      *os << ScanMethodName(node.scan_method) << " " << node.table;
      if (node.scan_method == ScanMethod::kIndexScan) {
        *os << " (index: " << node.index_column << ")";
      }
      if (!node.param_predicates.empty()) {
        *os << " filter params {";
        for (size_t i = 0; i < node.param_predicates.size(); ++i) {
          if (i) *os << ", ";
          *os << "$" << node.param_predicates[i];
        }
        *os << "}";
      }
      break;
    case PlanNode::Kind::kJoin:
      *os << JoinMethodName(node.join_method) << " (edge " << node.join_edge
          << ")";
      break;
    case PlanNode::Kind::kAggregate:
      *os << "Aggregate";
      break;
  }
  if (node.est_rows > 0.0 || node.est_cost > 0.0) {
    *os << "  [rows=" << node.est_rows << " cost=" << node.est_cost << "]";
  }
  *os << "\n";
  if (node.left) PrintIndented(*node.left, depth + 1, os);
  if (node.right) PrintIndented(*node.right, depth + 1, os);
}

}  // namespace

std::string CanonicalPlanString(const PlanNode& plan) {
  std::ostringstream os;
  Serialize(plan, &os);
  return os.str();
}

PlanId PlanFingerprint(const PlanNode& plan) {
  const std::string repr = CanonicalPlanString(plan);
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : repr) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash == kNullPlanId ? 1 : hash;
}

std::string PrintPlan(const PlanNode& plan) {
  std::ostringstream os;
  PrintIndented(plan, 0, &os);
  return os.str();
}

}  // namespace ppc
