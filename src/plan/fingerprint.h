#ifndef PPC_PLAN_FINGERPRINT_H_
#define PPC_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "plan/plan_node.h"

namespace ppc {

/// Identifier of a distinct physical plan. Two plans with equal structure
/// (operators, methods, tables, index columns, predicate placement, child
/// order) share a PlanId; optimizer cost annotations do not participate.
using PlanId = uint64_t;

/// Sentinel for "no plan" / NULL prediction.
inline constexpr PlanId kNullPlanId = 0;

/// Canonical textual serialization of the plan's structure. Stable across
/// runs; used as the hashing pre-image and in golden tests.
std::string CanonicalPlanString(const PlanNode& plan);

/// 64-bit FNV-1a fingerprint of CanonicalPlanString. Never returns
/// kNullPlanId (remapped to 1 in the astronomically unlikely collision).
PlanId PlanFingerprint(const PlanNode& plan);

/// Pretty multi-line rendering of a plan tree for examples and debugging.
std::string PrintPlan(const PlanNode& plan);

}  // namespace ppc

#endif  // PPC_PLAN_FINGERPRINT_H_
