#ifndef PPC_CATALOG_SCHEMA_H_
#define PPC_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ppc {

/// Storage type of a column. Dates are stored as days since an epoch.
enum class ColumnType {
  kInt64,
  kDouble,
  kDate,
};

/// Returns "INT64", "DOUBLE" or "DATE".
const char* ColumnTypeName(ColumnType type);

/// Definition of a single column within a table.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
};

/// Definition of a secondary index. All indexes in this library are
/// single-column B+-tree-style indexes (the cost model charges them
/// logarithmic lookup plus per-matching-row random I/O).
struct IndexDef {
  std::string name;
  std::string table;
  std::string column;
  bool unique = false;
};

/// Definition of a base table: columns, primary key, and foreign keys.
struct TableDef {
  /// One foreign-key edge: `column` references `ref_table.ref_column`.
  struct ForeignKey {
    std::string column;
    std::string ref_table;
    std::string ref_column;
  };

  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;
  std::vector<ForeignKey> foreign_keys;

  /// Returns the index of `column` within `columns`, or -1 if absent.
  int ColumnIndex(const std::string& column) const;
};

}  // namespace ppc

#endif  // PPC_CATALOG_SCHEMA_H_
