#include "catalog/catalog.h"

namespace ppc {

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table " + name);
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Status Catalog::AddIndex(IndexDef index) {
  auto it = tables_.find(index.table);
  if (it == tables_.end()) {
    return Status::NotFound("table " + index.table + " for index " +
                            index.name);
  }
  if (it->second->def().ColumnIndex(index.column) < 0) {
    return Status::NotFound("column " + index.column + " for index " +
                            index.name);
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

void Catalog::AnalyzeAll(size_t histogram_buckets) {
  stats_.clear();
  for (const auto& [name, table] : tables_) {
    for (size_t c = 0; c < table->column_count(); ++c) {
      const Column& column = table->column(c);
      stats_[{name, column.name()}] =
          ColumnStats::Compute(column, histogram_buckets);
    }
  }
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return const_cast<const Table*>(it->second.get());
}

Result<Table*> Catalog::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return it->second.get();
}

Result<const ColumnStats*> Catalog::GetColumnStats(
    const std::string& table, const std::string& column) const {
  auto it = stats_.find({table, column});
  if (it == stats_.end()) {
    return Status::NotFound("stats for " + table + "." + column);
  }
  return &it->second;
}

bool Catalog::HasIndex(const std::string& table,
                       const std::string& column) const {
  for (const IndexDef& idx : indexes_) {
    if (idx.table == table && idx.column == column) return true;
  }
  return false;
}

size_t Catalog::TableRows(const std::string& table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second->row_count();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace ppc
