#ifndef PPC_CATALOG_CATALOG_H_
#define PPC_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "stats/column_stats.h"
#include "storage/table.h"

namespace ppc {

/// The system catalog: base tables (with materialized data), secondary
/// indexes, and per-column optimizer statistics.
///
/// Both the query optimizer and the PPC framework's selectivity
/// normalization read statistics exclusively through this interface, so they
/// observe exactly the same estimates — the property the paper's
/// f : instance -> [0,1]^r mapping depends on.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers a table. Fails with AlreadyExists on duplicate names.
  Status AddTable(std::unique_ptr<Table> table);

  /// Registers a secondary index. The table and column must exist.
  Status AddIndex(IndexDef index);

  /// Recomputes statistics for every column of every table, using
  /// `histogram_buckets` buckets per histogram (ANALYZE equivalent).
  void AnalyzeAll(size_t histogram_buckets = 64);

  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  /// Statistics for `table`.`column`; NotFound if missing or not analyzed.
  Result<const ColumnStats*> GetColumnStats(const std::string& table,
                                            const std::string& column) const;

  /// True if a secondary index exists on `table`.`column`.
  bool HasIndex(const std::string& table, const std::string& column) const;

  /// Row count of `table` (0 if absent).
  size_t TableRows(const std::string& table) const;

  const std::vector<IndexDef>& indexes() const { return indexes_; }
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<IndexDef> indexes_;
  // (table, column) -> stats
  std::map<std::pair<std::string, std::string>, ColumnStats> stats_;
};

}  // namespace ppc

#endif  // PPC_CATALOG_CATALOG_H_
