#include "catalog/schema.h"

namespace ppc {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

int TableDef::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace ppc
