#include "exec/execution_simulator.h"

#include <cmath>
#include <unordered_map>

namespace ppc {

namespace {
std::atomic<uint64_t> g_next_instance_id{1};
}  // namespace

ExecutionSimulator::ExecutionSimulator(const CostModel* cost_model,
                                       Options options)
    : cost_model_(cost_model),
      options_(options),
      instance_id_(
          g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  PPC_CHECK(cost_model != nullptr);
}

Rng& ExecutionSimulator::ThreadLocalRng() {
  // One Rng per (thread, simulator) pair. Stream 0 seeds with the bare
  // options seed, reproducing the pre-concurrency sequence; later streams
  // are decorrelated by the golden-ratio increment feeding the Rng's
  // SplitMix64 seed expansion. Entries for destroyed simulators linger
  // until their thread exits — a few dozen bytes each, never reused for a
  // different simulator thanks to the unique instance id.
  thread_local std::unordered_map<uint64_t, Rng> rngs;
  auto it = rngs.find(instance_id_);
  if (it == rngs.end()) {
    const uint64_t stream =
        next_stream_.fetch_add(1, std::memory_order_relaxed);
    it = rngs.emplace(instance_id_,
                      Rng(options_.seed + stream * 0x9e3779b97f4a7c15ULL))
             .first;
  }
  return it->second;
}

Result<double> ExecutionSimulator::Execute(
    const PreparedTemplate& prep, const PlanNode& plan,
    const std::vector<double>& true_selectivities) {
  PPC_ASSIGN_OR_RETURN(
      PlanEvaluation eval,
      EvaluatePlanAtPoint(prep, *cost_model_, plan, true_selectivities));
  double cost = eval.cost;
  if (options_.noise_stddev > 0.0) {
    cost *= std::exp(ThreadLocalRng().Gaussian(0.0, options_.noise_stddev));
  }
  return cost;
}

}  // namespace ppc
