#include "exec/execution_simulator.h"

#include <cmath>

namespace ppc {

ExecutionSimulator::ExecutionSimulator(const CostModel* cost_model,
                                       Options options)
    : cost_model_(cost_model), options_(options), rng_(options.seed) {
  PPC_CHECK(cost_model != nullptr);
}

Result<double> ExecutionSimulator::Execute(
    const PreparedTemplate& prep, const PlanNode& plan,
    const std::vector<double>& true_selectivities) {
  PPC_ASSIGN_OR_RETURN(
      PlanEvaluation eval,
      EvaluatePlanAtPoint(prep, *cost_model_, plan, true_selectivities));
  double cost = eval.cost;
  if (options_.noise_stddev > 0.0) {
    cost *= std::exp(rng_.Gaussian(0.0, options_.noise_stddev));
  }
  return cost;
}

}  // namespace ppc
