#ifndef PPC_EXEC_ROW_EXECUTOR_H_
#define PPC_EXEC_ROW_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "plan/plan_node.h"
#include "workload/query_template.h"

namespace ppc {

/// Result of a row-level plan execution.
struct ExecutionStats {
  /// Final output cardinality (pre-aggregation row count for aggregates).
  uint64_t output_rows = 0;
  /// Total rows produced across all operators (work measure).
  uint64_t rows_processed = 0;
};

/// A materializing row-at-a-time executor over the in-memory catalog.
///
/// Executes real physical plans — sequential and index scans, hash,
/// block-nested-loop, index-nested-loop and sort-merge joins, final
/// aggregation — against actual table data. Used to validate that (a) every
/// join method produces identical results, and (b) the optimizer's
/// cardinality estimates track reality. (End-to-end experiments use the
/// cost-replay ExecutionSimulator instead; see DESIGN.md.)
class RowExecutor {
 public:
  explicit RowExecutor(const Catalog* catalog);

  /// Executes `plan` for `tmpl` with concrete parameter values
  /// (`param_values[i]` instantiates `tmpl.params[i]` as `column <= v`).
  Result<ExecutionStats> Execute(const QueryTemplate& tmpl,
                                 const PlanNode& plan,
                                 const std::vector<double>& param_values);

 private:
  const Catalog* catalog_;
};

}  // namespace ppc

#endif  // PPC_EXEC_ROW_EXECUTOR_H_
