#ifndef PPC_EXEC_EXECUTION_SIMULATOR_H_
#define PPC_EXEC_EXECUTION_SIMULATOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_evaluator.h"

namespace ppc {

/// Simulates execution of a plan at a plan-space point.
///
/// Execution cost is the cost model replayed at the point's *true*
/// selectivities (so running a stale cached plan away from its optimality
/// region is charged its genuinely higher cost), optionally perturbed with
/// multiplicative log-normal noise to model run-to-run variance of a real
/// system. This stands in for the paper's black-box commercial DBMS
/// executor; see DESIGN.md ("substitutions").
///
/// Thread safety: Execute may be called concurrently. Each calling thread
/// draws noise from its own RNG stream derived deterministically from the
/// seed (stream k seeds the generator with seed + k * golden-ratio), so
/// runs are reproducible given a fixed thread-arrival order; the first
/// stream reproduces the historical single-threaded sequence exactly.
class ExecutionSimulator {
 public:
  struct Options {
    /// Standard deviation of ln(noise factor); 0 disables noise.
    double noise_stddev = 0.0;
    uint64_t seed = 7;
  };

  explicit ExecutionSimulator(const CostModel* cost_model)
      : ExecutionSimulator(cost_model, Options{}) {}
  ExecutionSimulator(const CostModel* cost_model, Options options);

  /// Returns the execution cost of `plan` at `true_selectivities`.
  Result<double> Execute(const PreparedTemplate& prep, const PlanNode& plan,
                         const std::vector<double>& true_selectivities);

 private:
  /// The calling thread's RNG stream for this simulator instance.
  Rng& ThreadLocalRng();

  const CostModel* cost_model_;
  Options options_;
  /// Distinguishes simulator instances in per-thread RNG storage (an
  /// address could be reused after destruction; this id never is).
  uint64_t instance_id_;
  std::atomic<uint64_t> next_stream_{0};
};

}  // namespace ppc

#endif  // PPC_EXEC_EXECUTION_SIMULATOR_H_
