#ifndef PPC_EXEC_EXECUTION_SIMULATOR_H_
#define PPC_EXEC_EXECUTION_SIMULATOR_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "optimizer/optimizer.h"
#include "optimizer/plan_evaluator.h"

namespace ppc {

/// Simulates execution of a plan at a plan-space point.
///
/// Execution cost is the cost model replayed at the point's *true*
/// selectivities (so running a stale cached plan away from its optimality
/// region is charged its genuinely higher cost), optionally perturbed with
/// multiplicative log-normal noise to model run-to-run variance of a real
/// system. This stands in for the paper's black-box commercial DBMS
/// executor; see DESIGN.md ("substitutions").
class ExecutionSimulator {
 public:
  struct Options {
    /// Standard deviation of ln(noise factor); 0 disables noise.
    double noise_stddev = 0.0;
    uint64_t seed = 7;
  };

  explicit ExecutionSimulator(const CostModel* cost_model)
      : ExecutionSimulator(cost_model, Options{}) {}
  ExecutionSimulator(const CostModel* cost_model, Options options);

  /// Returns the execution cost of `plan` at `true_selectivities`.
  Result<double> Execute(const PreparedTemplate& prep, const PlanNode& plan,
                         const std::vector<double>& true_selectivities);

 private:
  const CostModel* cost_model_;
  Options options_;
  Rng rng_;
};

}  // namespace ppc

#endif  // PPC_EXEC_EXECUTION_SIMULATOR_H_
