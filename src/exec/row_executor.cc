#include "exec/row_executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/macros.h"

namespace ppc {

namespace {

/// An intermediate tuple: one row id per participating table, addressed by
/// the template's table index. -1 marks tables not yet joined in.
using TupleRow = std::vector<int64_t>;

struct Relation {
  std::vector<TupleRow> rows;
  uint64_t rows_processed = 0;
};

class Executor {
 public:
  Executor(const Catalog* catalog, const QueryTemplate& tmpl,
           const std::vector<double>& param_values)
      : catalog_(catalog), tmpl_(tmpl), param_values_(param_values) {}

  Result<Relation> Eval(const PlanNode& node) {
    switch (node.kind) {
      case PlanNode::Kind::kScan:
        return EvalScan(node);
      case PlanNode::Kind::kJoin:
        return EvalJoin(node);
      case PlanNode::Kind::kAggregate: {
        // Aggregation collapses to a single row but we report the child
        // cardinality; the caller distinguishes via ExecutionStats.
        return Eval(*node.left);
      }
    }
    return Status::Internal("unknown plan node kind");
  }

 private:
  Result<int> TableIndex(const std::string& name) const {
    const int t = tmpl_.TableIndex(name);
    if (t < 0) {
      return Status::InvalidArgument("plan table " + name +
                                     " not in template");
    }
    return t;
  }

  /// Value of `column` for the row of `table_idx` inside `tuple`.
  Result<double> TupleValue(const TupleRow& tuple, int table_idx,
                            const std::string& column) const {
    const int64_t row = tuple[static_cast<size_t>(table_idx)];
    if (row < 0) return Status::Internal("tuple missing table component");
    PPC_ASSIGN_OR_RETURN(const Table* table,
                         catalog_->GetTable(tmpl_.tables[
                             static_cast<size_t>(table_idx)]));
    PPC_ASSIGN_OR_RETURN(const Column* col, table->FindColumn(column));
    return col->AsDouble(static_cast<size_t>(row));
  }

  bool PassesParams(const Table& table, size_t row,
                    const std::vector<int>& params) const {
    for (int p : params) {
      const ParamPredicate& param = tmpl_.params[static_cast<size_t>(p)];
      auto col = table.FindColumn(param.column);
      PPC_CHECK(col.ok());
      const double value = col.value()->AsDouble(row);
      const double bound = param_values_[static_cast<size_t>(p)];
      const bool pass = param.op == PredicateOp::kLeq ? value <= bound
                                                      : value >= bound;
      if (!pass) return false;
    }
    return true;
  }

  Result<Relation> EvalScan(const PlanNode& node) {
    PPC_ASSIGN_OR_RETURN(int t, TableIndex(node.table));
    PPC_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(node.table));
    Relation rel;
    // Both access paths produce the same rows; an index scan on the
    // parameter column could skip non-matching rows, but correctness (the
    // property this executor checks) is identical, so we scan uniformly.
    for (size_t row = 0; row < table->row_count(); ++row) {
      if (!PassesParams(*table, row, node.param_predicates)) continue;
      TupleRow tuple(tmpl_.tables.size(), -1);
      tuple[static_cast<size_t>(t)] = static_cast<int64_t>(row);
      rel.rows.push_back(std::move(tuple));
    }
    rel.rows_processed = table->row_count();
    return rel;
  }

  /// Join keys for the edges that cross the left/right table sets.
  struct CrossingEdge {
    int left_table;
    std::string left_column;
    int right_table;
    std::string right_column;
  };

  Result<std::vector<CrossingEdge>> CrossingEdges(
      const Relation& left, const Relation& right) const {
    auto covered = [](const Relation& rel, int t) {
      return !rel.rows.empty() &&
             rel.rows.front()[static_cast<size_t>(t)] >= 0;
    };
    std::vector<CrossingEdge> edges;
    for (const JoinEdge& edge : tmpl_.joins) {
      const int lt = tmpl_.TableIndex(edge.left_table);
      const int rt = tmpl_.TableIndex(edge.right_table);
      PPC_CHECK(lt >= 0 && rt >= 0);
      if (covered(left, lt) && covered(right, rt)) {
        edges.push_back({lt, edge.left_column, rt, edge.right_column});
      } else if (covered(left, rt) && covered(right, lt)) {
        edges.push_back({rt, edge.right_column, lt, edge.left_column});
      }
    }
    return edges;
  }

  static TupleRow MergeTuples(const TupleRow& a, const TupleRow& b) {
    TupleRow merged = a;
    for (size_t i = 0; i < b.size(); ++i) {
      if (b[i] >= 0) merged[i] = b[i];
    }
    return merged;
  }

  Result<Relation> EvalJoin(const PlanNode& node) {
    PPC_ASSIGN_OR_RETURN(Relation left, Eval(*node.left));
    PPC_ASSIGN_OR_RETURN(Relation right, Eval(*node.right));
    Relation out;
    out.rows_processed = left.rows_processed + right.rows_processed;
    if (left.rows.empty() || right.rows.empty()) return out;

    PPC_ASSIGN_OR_RETURN(std::vector<CrossingEdge> edges,
                         CrossingEdges(left, right));
    if (edges.empty()) {
      return Status::InvalidArgument("plan contains a Cartesian product");
    }

    // All join methods implement the same semantics; we dispatch to the
    // plan's method so each algorithm's code path is genuinely exercised.
    switch (node.join_method) {
      case JoinMethod::kHashJoin:
      case JoinMethod::kIndexNestedLoop: {
        // Hash (or simulated index lookup) on the right side keyed by the
        // first crossing edge; residual edges verified per match.
        const CrossingEdge& key = edges.front();
        std::unordered_multimap<double, size_t> hash;
        hash.reserve(right.rows.size());
        for (size_t i = 0; i < right.rows.size(); ++i) {
          PPC_ASSIGN_OR_RETURN(
              double v,
              TupleValue(right.rows[i], key.right_table, key.right_column));
          hash.emplace(v, i);
        }
        for (const TupleRow& ltuple : left.rows) {
          PPC_ASSIGN_OR_RETURN(
              double v, TupleValue(ltuple, key.left_table, key.left_column));
          auto [begin, end] = hash.equal_range(v);
          for (auto it = begin; it != end; ++it) {
            const TupleRow& rtuple = right.rows[it->second];
            bool all = true;
            for (size_t e = 1; e < edges.size(); ++e) {
              PPC_ASSIGN_OR_RETURN(
                  double lv, TupleValue(ltuple, edges[e].left_table,
                                        edges[e].left_column));
              PPC_ASSIGN_OR_RETURN(
                  double rv, TupleValue(rtuple, edges[e].right_table,
                                        edges[e].right_column));
              if (lv != rv) {
                all = false;
                break;
              }
            }
            if (all) out.rows.push_back(MergeTuples(ltuple, rtuple));
          }
        }
        break;
      }
      case JoinMethod::kBlockNestedLoop: {
        for (const TupleRow& ltuple : left.rows) {
          for (const TupleRow& rtuple : right.rows) {
            bool all = true;
            for (const CrossingEdge& edge : edges) {
              PPC_ASSIGN_OR_RETURN(
                  double lv,
                  TupleValue(ltuple, edge.left_table, edge.left_column));
              PPC_ASSIGN_OR_RETURN(
                  double rv,
                  TupleValue(rtuple, edge.right_table, edge.right_column));
              if (lv != rv) {
                all = false;
                break;
              }
            }
            if (all) out.rows.push_back(MergeTuples(ltuple, rtuple));
          }
        }
        break;
      }
      case JoinMethod::kSortMergeJoin: {
        const CrossingEdge& key = edges.front();
        auto sort_key = [&](const Relation& rel, int table,
                            const std::string& column) {
          std::vector<std::pair<double, size_t>> keys;
          keys.reserve(rel.rows.size());
          for (size_t i = 0; i < rel.rows.size(); ++i) {
            auto v = TupleValue(rel.rows[i], table, column);
            PPC_CHECK(v.ok());
            keys.emplace_back(v.value(), i);
          }
          std::sort(keys.begin(), keys.end());
          return keys;
        };
        auto lkeys = sort_key(left, key.left_table, key.left_column);
        auto rkeys = sort_key(right, key.right_table, key.right_column);
        size_t li = 0, ri = 0;
        while (li < lkeys.size() && ri < rkeys.size()) {
          if (lkeys[li].first < rkeys[ri].first) {
            ++li;
          } else if (lkeys[li].first > rkeys[ri].first) {
            ++ri;
          } else {
            const double v = lkeys[li].first;
            size_t lend = li, rend = ri;
            while (lend < lkeys.size() && lkeys[lend].first == v) ++lend;
            while (rend < rkeys.size() && rkeys[rend].first == v) ++rend;
            for (size_t a = li; a < lend; ++a) {
              for (size_t b = ri; b < rend; ++b) {
                const TupleRow& ltuple = left.rows[lkeys[a].second];
                const TupleRow& rtuple = right.rows[rkeys[b].second];
                bool all = true;
                for (size_t e = 1; e < edges.size(); ++e) {
                  PPC_ASSIGN_OR_RETURN(
                      double lv, TupleValue(ltuple, edges[e].left_table,
                                            edges[e].left_column));
                  PPC_ASSIGN_OR_RETURN(
                      double rv, TupleValue(rtuple, edges[e].right_table,
                                            edges[e].right_column));
                  if (lv != rv) {
                    all = false;
                    break;
                  }
                }
                if (all) out.rows.push_back(MergeTuples(ltuple, rtuple));
              }
            }
            li = lend;
            ri = rend;
          }
        }
        break;
      }
    }
    out.rows_processed += out.rows.size();
    return out;
  }

  const Catalog* catalog_;
  const QueryTemplate& tmpl_;
  const std::vector<double>& param_values_;
};

}  // namespace

RowExecutor::RowExecutor(const Catalog* catalog) : catalog_(catalog) {
  PPC_CHECK(catalog != nullptr);
}

Result<ExecutionStats> RowExecutor::Execute(
    const QueryTemplate& tmpl, const PlanNode& plan,
    const std::vector<double>& param_values) {
  if (param_values.size() != tmpl.params.size()) {
    return Status::InvalidArgument("parameter arity mismatch");
  }
  Executor executor(catalog_, tmpl, param_values);
  PPC_ASSIGN_OR_RETURN(Relation rel, executor.Eval(plan));
  ExecutionStats stats;
  stats.output_rows = rel.rows.size();
  stats.rows_processed = rel.rows_processed;
  return stats;
}

}  // namespace ppc
