#ifndef PPC_STORAGE_COLUMN_H_
#define PPC_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "catalog/schema.h"
#include "common/macros.h"

namespace ppc {

/// In-memory columnar storage for one column of a base table.
///
/// Integer and date columns share an int64 representation; doubles are stored
/// natively. All statistics and predicate evaluation view values through
/// AsDouble(), which is lossless for the value ranges this library generates.
class Column {
 public:
  Column(std::string name, ColumnType type);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const;

  /// Appends an integer (also used for dates). Requires an int-backed column.
  void AppendInt(int64_t value);
  /// Appends a double. Requires a double-backed column.
  void AppendDouble(double value);
  /// Appends a value given as double, converting to the column's storage
  /// type (ints are rounded toward nearest).
  void AppendAsDouble(double value);

  /// Returns the value at `row` widened to double.
  double AsDouble(size_t row) const;

  /// Returns the int representation at `row`. Requires an int-backed column.
  int64_t AsInt(size_t row) const;

  /// Reserves storage for `rows` values.
  void Reserve(size_t rows);

  /// Returns all values widened to double (used by statistics builders).
  std::vector<double> ToDoubleVector() const;

 private:
  bool int_backed() const { return type_ != ColumnType::kDouble; }

  std::string name_;
  ColumnType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
};

}  // namespace ppc

#endif  // PPC_STORAGE_COLUMN_H_
