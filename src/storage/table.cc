#include "storage/table.h"

namespace ppc {

Table::Table(TableDef def) : def_(std::move(def)) {
  columns_.reserve(def_.columns.size());
  for (const ColumnDef& col : def_.columns) {
    columns_.emplace_back(col.name, col.type);
  }
}

Result<const Column*> Table::FindColumn(const std::string& name) const {
  const int idx = def_.ColumnIndex(name);
  if (idx < 0) {
    return Status::NotFound("column " + name + " in table " + def_.name);
  }
  return &columns_[static_cast<size_t>(idx)];
}

Status Table::AppendRow(const std::vector<double>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   def_.name);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    columns_[i].AppendAsDouble(values[i]);
  }
  ++row_count_;
  return Status::OK();
}

void Table::Reserve(size_t rows) {
  for (Column& col : columns_) col.Reserve(rows);
}

}  // namespace ppc
