#include "storage/column.h"

#include <cmath>

namespace ppc {

Column::Column(std::string name, ColumnType type)
    : name_(std::move(name)), type_(type) {}

size_t Column::size() const {
  return int_backed() ? ints_.size() : doubles_.size();
}

void Column::AppendInt(int64_t value) {
  PPC_DCHECK(int_backed());
  ints_.push_back(value);
}

void Column::AppendDouble(double value) {
  PPC_DCHECK(!int_backed());
  doubles_.push_back(value);
}

void Column::AppendAsDouble(double value) {
  if (int_backed()) {
    ints_.push_back(static_cast<int64_t>(std::llround(value)));
  } else {
    doubles_.push_back(value);
  }
}

double Column::AsDouble(size_t row) const {
  if (int_backed()) {
    PPC_DCHECK(row < ints_.size());
    return static_cast<double>(ints_[row]);
  }
  PPC_DCHECK(row < doubles_.size());
  return doubles_[row];
}

int64_t Column::AsInt(size_t row) const {
  PPC_DCHECK(int_backed());
  PPC_DCHECK(row < ints_.size());
  return ints_[row];
}

void Column::Reserve(size_t rows) {
  if (int_backed()) {
    ints_.reserve(rows);
  } else {
    doubles_.reserve(rows);
  }
}

std::vector<double> Column::ToDoubleVector() const {
  std::vector<double> out;
  out.reserve(size());
  for (size_t i = 0; i < size(); ++i) out.push_back(AsDouble(i));
  return out;
}

}  // namespace ppc
