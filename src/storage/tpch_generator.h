#ifndef PPC_STORAGE_TPCH_GENERATOR_H_
#define PPC_STORAGE_TPCH_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "catalog/catalog.h"

namespace ppc {

/// Configuration of the synthetic TPC-H-style database (Appendix A of the
/// paper: "a slightly modified TPC-H schema ... a date column has been added
/// to each TPC-H table, populated by values following a Gaussian
/// distribution ... indexes over the primary and foreign key attributes ...
/// as well as the date columns").
struct TpchConfig {
  /// Fraction of the TPC-H SF-1 row counts to materialize. The optimizer
  /// consumes statistics, so plan-space *shape* is scale-invariant; smaller
  /// scales keep experiments fast.
  double scale_factor = 0.002;
  uint64_t seed = 42;
  /// Buckets per column histogram when analyzing.
  size_t histogram_buckets = 64;
  /// Gaussian parameters of the added date columns, in days over [0, span].
  double date_span_days = 2557.0;   // 1992-01-01 .. 1998-12-31
  double date_mean_days = 1278.0;
  double date_stddev_days = 400.0;
};

/// Generates the 8-table TPC-H-style catalog with materialized data,
/// key/foreign-key indexes, indexes on the added Gaussian date columns,
/// and freshly analyzed statistics.
std::unique_ptr<Catalog> BuildTpchCatalog(const TpchConfig& config);

/// Row count of `table` at TPC-H scale factor 1 (lineitem is approximate:
/// orders have a variable number of lines).
size_t TpchBaseRows(const std::string& table);

}  // namespace ppc

#endif  // PPC_STORAGE_TPCH_GENERATOR_H_
