#include "storage/tpch_generator.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"

namespace ppc {

namespace {

constexpr size_t kSupplierRows = 10000;
constexpr size_t kPartRows = 200000;
constexpr size_t kPartsuppPerPart = 4;
constexpr size_t kCustomerRows = 150000;
constexpr size_t kOrdersRows = 1500000;
constexpr size_t kMaxLinesPerOrder = 7;

/// Scales a base row count, keeping at least a handful of rows so joins
/// remain meaningful at tiny scale factors.
size_t Scaled(size_t base, double sf) {
  return std::max<size_t>(8, static_cast<size_t>(
                                 std::llround(static_cast<double>(base) * sf)));
}

double GaussianDate(Rng* rng, const TpchConfig& cfg) {
  const double d = rng->Gaussian(cfg.date_mean_days, cfg.date_stddev_days);
  return Clamp(d, 0.0, cfg.date_span_days);
}

TableDef RegionDef() {
  return TableDef{
      "region",
      {{"r_regionkey", ColumnType::kInt64}, {"r_code", ColumnType::kInt64}},
      {"r_regionkey"},
      {}};
}

TableDef NationDef() {
  return TableDef{"nation",
                  {{"n_nationkey", ColumnType::kInt64},
                   {"n_regionkey", ColumnType::kInt64}},
                  {"n_nationkey"},
                  {{"n_regionkey", "region", "r_regionkey"}}};
}

TableDef SupplierDef() {
  return TableDef{"supplier",
                  {{"s_suppkey", ColumnType::kInt64},
                   {"s_nationkey", ColumnType::kInt64},
                   {"s_acctbal", ColumnType::kDouble},
                   {"s_date", ColumnType::kDate}},
                  {"s_suppkey"},
                  {{"s_nationkey", "nation", "n_nationkey"}}};
}

TableDef PartDef() {
  return TableDef{"part",
                  {{"p_partkey", ColumnType::kInt64},
                   {"p_size", ColumnType::kInt64},
                   {"p_retailprice", ColumnType::kDouble},
                   {"p_date", ColumnType::kDate}},
                  {"p_partkey"},
                  {}};
}

TableDef PartsuppDef() {
  return TableDef{"partsupp",
                  {{"ps_partkey", ColumnType::kInt64},
                   {"ps_suppkey", ColumnType::kInt64},
                   {"ps_availqty", ColumnType::kInt64},
                   {"ps_supplycost", ColumnType::kDouble},
                   {"ps_date", ColumnType::kDate}},
                  {"ps_partkey", "ps_suppkey"},
                  {{"ps_partkey", "part", "p_partkey"},
                   {"ps_suppkey", "supplier", "s_suppkey"}}};
}

TableDef CustomerDef() {
  return TableDef{"customer",
                  {{"c_custkey", ColumnType::kInt64},
                   {"c_nationkey", ColumnType::kInt64},
                   {"c_acctbal", ColumnType::kDouble},
                   {"c_date", ColumnType::kDate}},
                  {"c_custkey"},
                  {{"c_nationkey", "nation", "n_nationkey"}}};
}

TableDef OrdersDef() {
  return TableDef{"orders",
                  {{"o_orderkey", ColumnType::kInt64},
                   {"o_custkey", ColumnType::kInt64},
                   {"o_totalprice", ColumnType::kDouble},
                   {"o_date", ColumnType::kDate}},
                  {"o_orderkey"},
                  {{"o_custkey", "customer", "c_custkey"}}};
}

TableDef LineitemDef() {
  return TableDef{"lineitem",
                  {{"l_orderkey", ColumnType::kInt64},
                   {"l_linenumber", ColumnType::kInt64},
                   {"l_partkey", ColumnType::kInt64},
                   {"l_suppkey", ColumnType::kInt64},
                   {"l_quantity", ColumnType::kInt64},
                   {"l_extendedprice", ColumnType::kDouble},
                   {"l_discount", ColumnType::kDouble},
                   {"l_date", ColumnType::kDate}},
                  {"l_orderkey", "l_linenumber"},
                  {{"l_orderkey", "orders", "o_orderkey"},
                   {"l_partkey", "part", "p_partkey"},
                   {"l_suppkey", "supplier", "s_suppkey"}}};
}

}  // namespace

size_t TpchBaseRows(const std::string& table) {
  if (table == "region") return 5;
  if (table == "nation") return 25;
  if (table == "supplier") return kSupplierRows;
  if (table == "part") return kPartRows;
  if (table == "partsupp") return kPartRows * kPartsuppPerPart;
  if (table == "customer") return kCustomerRows;
  if (table == "orders") return kOrdersRows;
  if (table == "lineitem") return kOrdersRows * 4;  // ~4 lines per order
  return 0;
}

std::unique_ptr<Catalog> BuildTpchCatalog(const TpchConfig& cfg) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(cfg.seed);

  // region / nation: fixed tiny dimension tables.
  {
    auto region = std::make_unique<Table>(RegionDef());
    for (int64_t r = 0; r < 5; ++r) {
      PPC_CHECK(region
                    ->AppendRow({static_cast<double>(r),
                                 static_cast<double>(100 + r)})
                    .ok());
    }
    PPC_CHECK(catalog->AddTable(std::move(region)).ok());

    auto nation = std::make_unique<Table>(NationDef());
    for (int64_t n = 0; n < 25; ++n) {
      PPC_CHECK(nation
                    ->AppendRow({static_cast<double>(n),
                                 static_cast<double>(n % 5)})
                    .ok());
    }
    PPC_CHECK(catalog->AddTable(std::move(nation)).ok());
  }

  const size_t suppliers = Scaled(kSupplierRows, cfg.scale_factor);
  const size_t parts = Scaled(kPartRows, cfg.scale_factor);
  const size_t customers = Scaled(kCustomerRows, cfg.scale_factor);
  const size_t orders = Scaled(kOrdersRows, cfg.scale_factor);

  {
    auto supplier = std::make_unique<Table>(SupplierDef());
    supplier->Reserve(suppliers);
    for (size_t i = 1; i <= suppliers; ++i) {
      PPC_CHECK(supplier
                    ->AppendRow({static_cast<double>(i),
                                 static_cast<double>(rng.UniformInt(25)),
                                 rng.Uniform(-999.99, 9999.99),
                                 GaussianDate(&rng, cfg)})
                    .ok());
    }
    PPC_CHECK(catalog->AddTable(std::move(supplier)).ok());
  }

  {
    auto part = std::make_unique<Table>(PartDef());
    part->Reserve(parts);
    for (size_t i = 1; i <= parts; ++i) {
      PPC_CHECK(part->AppendRow(
                        {static_cast<double>(i),
                         static_cast<double>(rng.UniformInt(1, 50)),
                         900.0 + rng.Uniform() * 1200.0,
                         GaussianDate(&rng, cfg)})
                    .ok());
    }
    PPC_CHECK(catalog->AddTable(std::move(part)).ok());
  }

  {
    auto partsupp = std::make_unique<Table>(PartsuppDef());
    partsupp->Reserve(parts * kPartsuppPerPart);
    for (size_t p = 1; p <= parts; ++p) {
      for (size_t s = 0; s < kPartsuppPerPart; ++s) {
        const size_t suppkey =
            1 + (p * kPartsuppPerPart + s) % suppliers;
        PPC_CHECK(partsupp
                      ->AppendRow({static_cast<double>(p),
                                   static_cast<double>(suppkey),
                                   static_cast<double>(rng.UniformInt(1, 9999)),
                                   rng.Uniform(1.0, 1000.0),
                                   GaussianDate(&rng, cfg)})
                      .ok());
      }
    }
    PPC_CHECK(catalog->AddTable(std::move(partsupp)).ok());
  }

  {
    auto customer = std::make_unique<Table>(CustomerDef());
    customer->Reserve(customers);
    for (size_t i = 1; i <= customers; ++i) {
      PPC_CHECK(customer
                    ->AppendRow({static_cast<double>(i),
                                 static_cast<double>(rng.UniformInt(25)),
                                 rng.Uniform(-999.99, 9999.99),
                                 GaussianDate(&rng, cfg)})
                    .ok());
    }
    PPC_CHECK(catalog->AddTable(std::move(customer)).ok());
  }

  {
    auto orders_table = std::make_unique<Table>(OrdersDef());
    auto lineitem = std::make_unique<Table>(LineitemDef());
    orders_table->Reserve(orders);
    lineitem->Reserve(orders * 4);
    for (size_t o = 1; o <= orders; ++o) {
      const size_t custkey = 1 + rng.UniformInt(customers);
      const size_t lines = 1 + rng.UniformInt(kMaxLinesPerOrder);
      double total = 0.0;
      const double odate = GaussianDate(&rng, cfg);
      for (size_t l = 1; l <= lines; ++l) {
        const size_t partkey = 1 + rng.UniformInt(parts);
        const size_t suppkey = 1 + rng.UniformInt(suppliers);
        const int64_t qty = rng.UniformInt(1, 50);
        const double price =
            static_cast<double>(qty) * (900.0 + rng.Uniform() * 1200.0);
        const double discount = rng.Uniform(0.0, 0.10);
        total += price * (1.0 - discount);
        // Line dates cluster near the order date (ship-lag days).
        const double ldate =
            Clamp(odate + rng.Uniform(0.0, 120.0), 0.0, cfg.date_span_days);
        PPC_CHECK(lineitem
                      ->AppendRow({static_cast<double>(o),
                                   static_cast<double>(l),
                                   static_cast<double>(partkey),
                                   static_cast<double>(suppkey),
                                   static_cast<double>(qty), price, discount,
                                   ldate})
                      .ok());
      }
      PPC_CHECK(orders_table
                    ->AppendRow({static_cast<double>(o),
                                 static_cast<double>(custkey), total, odate})
                    .ok());
    }
    PPC_CHECK(catalog->AddTable(std::move(orders_table)).ok());
    PPC_CHECK(catalog->AddTable(std::move(lineitem)).ok());
  }

  // Indexes: primary keys, foreign keys, and the added date columns.
  const std::vector<IndexDef> indexes = {
      {"region_pk", "region", "r_regionkey", true},
      {"nation_pk", "nation", "n_nationkey", true},
      {"nation_region_fk", "nation", "n_regionkey", false},
      {"supplier_pk", "supplier", "s_suppkey", true},
      {"supplier_nation_fk", "supplier", "s_nationkey", false},
      {"supplier_date", "supplier", "s_date", false},
      {"part_pk", "part", "p_partkey", true},
      {"part_date", "part", "p_date", false},
      {"partsupp_part_fk", "partsupp", "ps_partkey", false},
      {"partsupp_supp_fk", "partsupp", "ps_suppkey", false},
      {"partsupp_date", "partsupp", "ps_date", false},
      {"customer_pk", "customer", "c_custkey", true},
      {"customer_nation_fk", "customer", "c_nationkey", false},
      {"customer_date", "customer", "c_date", false},
      {"orders_pk", "orders", "o_orderkey", true},
      {"orders_cust_fk", "orders", "o_custkey", false},
      {"orders_date", "orders", "o_date", false},
      {"lineitem_order_fk", "lineitem", "l_orderkey", false},
      {"lineitem_part_fk", "lineitem", "l_partkey", false},
      {"lineitem_supp_fk", "lineitem", "l_suppkey", false},
      {"lineitem_date", "lineitem", "l_date", false},
  };
  for (const IndexDef& idx : indexes) {
    PPC_CHECK(catalog->AddIndex(idx).ok());
  }

  catalog->AnalyzeAll(cfg.histogram_buckets);
  return catalog;
}

}  // namespace ppc
