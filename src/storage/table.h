#ifndef PPC_STORAGE_TABLE_H_
#define PPC_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "storage/column.h"

namespace ppc {

/// In-memory columnar table. Rows are addressed by position; the executor
/// and statistics builders iterate columns directly.
class Table {
 public:
  explicit Table(TableDef def);

  const TableDef& def() const { return def_; }
  const std::string& name() const { return def_.name; }
  size_t row_count() const { return row_count_; }
  size_t column_count() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  /// Returns the column named `name` or NotFound.
  Result<const Column*> FindColumn(const std::string& name) const;

  /// Appends one row given as doubles (one per column, converted to each
  /// column's storage type). Returns InvalidArgument on arity mismatch.
  Status AppendRow(const std::vector<double>& values);

  /// Reserves storage for `rows` rows across all columns.
  void Reserve(size_t rows);

  /// Estimated bytes per row for cost-model page computations (8 bytes per
  /// column in this in-memory representation).
  size_t RowWidthBytes() const { return columns_.size() * 8; }

 private:
  TableDef def_;
  std::vector<Column> columns_;
  size_t row_count_ = 0;
};

}  // namespace ppc

#endif  // PPC_STORAGE_TABLE_H_
