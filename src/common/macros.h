#ifndef PPC_COMMON_MACROS_H_
#define PPC_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts the process with a message when `condition` is false.
///
/// Used for internal invariants that indicate programmer error rather than
/// recoverable runtime failures (which are reported via ppc::Status).
#define PPC_CHECK(condition)                                                \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "PPC_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// PPC_CHECK with an explanatory message.
#define PPC_CHECK_MSG(condition, msg)                                       \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "PPC_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #condition, msg);                    \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Checks that are active only in debug builds.
#ifdef NDEBUG
#define PPC_DCHECK(condition) \
  do {                        \
  } while (0)
#else
#define PPC_DCHECK(condition) PPC_CHECK(condition)
#endif

#endif  // PPC_COMMON_MACROS_H_
