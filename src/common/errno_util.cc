#include "common/errno_util.h"

#include <string.h>

namespace ppc {
namespace {

// strerror_r has two incompatible signatures: the GNU one returns char*
// (possibly a static immutable string, ignoring the buffer), the
// XSI/POSIX one returns int and always fills the buffer. Overload on the
// actual return type so this compiles correctly under either, without
// feature-macro guessing.
[[maybe_unused]] std::string NormalizeStrerror(char* result,
                                               const char* /*buf*/,
                                               int /*err*/) {
  return result;  // GNU variant: the returned pointer is the message.
}

[[maybe_unused]] std::string NormalizeStrerror(int result, const char* buf,
                                               int err) {
  if (result != 0) return "errno " + std::to_string(err);
  return buf;  // XSI variant: the message was written into buf.
}

}  // namespace

std::string ErrnoMessage(int err) {
  char buf[256] = {};
  return NormalizeStrerror(strerror_r(err, buf, sizeof(buf)), buf, err);
}

}  // namespace ppc
