#ifndef PPC_COMMON_ARENA_H_
#define PPC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ppc {

/// A per-request bump allocator for the serving fast path.
///
/// The batched predict path needs a handful of scratch arrays (transformed
/// coordinates, per-transform counts, histogram probe tables) whose sizes
/// depend on the batch; allocating them from the heap on every request is
/// measurable at the target request rates. An Arena hands out raw storage
/// by bumping an offset into a block, and Reset() recycles everything at
/// once between requests.
///
/// Growth/steady-state contract: when a request overflows the current
/// block, a larger block is chained on (old pointers stay valid until
/// Reset). The *next* Reset consolidates all blocks into one block big
/// enough for everything the previous request used, so a workload that
/// repeats the same allocation pattern reaches a single-block steady state
/// and then performs ZERO heap operations per request — the property the
/// allocation-counting predictor test pins down.
///
/// Alignment: every allocation is aligned to alignof(std::max_align_t).
/// Not thread-safe; intended use is one thread_local arena per worker.
class Arena {
 public:
  Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns uninitialized storage for `count` objects of type T. T must
  /// be trivially destructible (nothing is ever destroyed) and require no
  /// more than max_align_t alignment. count == 0 returns a non-null
  /// one-past pointer that must not be dereferenced.
  template <typename T>
  T* Array(size_t count) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "Arena only guarantees max_align_t alignment");
    return static_cast<T*>(Allocate(count * sizeof(T)));
  }

  /// Recycles all storage. Previously returned pointers become invalid.
  /// Multi-block arenas consolidate into one block sized for the previous
  /// request (see class comment); single-block arenas touch no heap.
  void Reset() {
    if (blocks_.size() > 1) Consolidate();
    offset_ = 0;
  }

  /// Total block capacity currently held (diagnostics / tests).
  size_t CapacityBytes() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Number of blocks currently held; 1 in steady state (tests).
  size_t BlockCount() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  static constexpr size_t kAlignment = alignof(std::max_align_t);
  static constexpr size_t kMinBlockBytes = 4096;

  static size_t AlignUp(size_t n) {
    return (n + kAlignment - 1) & ~(kAlignment - 1);
  }

  void* Allocate(size_t bytes) {
    bytes = AlignUp(bytes);
    if (blocks_.empty() || offset_ + bytes > blocks_.back().size) {
      AddBlock(bytes);
      offset_ = 0;
    }
    char* out = blocks_.back().data.get() + offset_;
    offset_ += bytes;
    return out;
  }

  void AddBlock(size_t min_bytes) {
    // Geometric growth over the total already held, so a request that
    // outgrows its arena needs O(log n) blocks before steady state.
    size_t size = kMinBlockBytes;
    const size_t held = CapacityBytes();
    if (held > size) size = held;
    while (size < min_bytes) size *= 2;
    blocks_.push_back(Block{std::make_unique<char[]>(size), size});
  }

  void Consolidate() {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    blocks_.clear();
    blocks_.push_back(Block{std::make_unique<char[]>(total), total});
  }

  std::vector<Block> blocks_;
  size_t offset_ = 0;  // bump offset into blocks_.back()
};

}  // namespace ppc

#endif  // PPC_COMMON_ARENA_H_
