#ifndef PPC_COMMON_ERRNO_UTIL_H_
#define PPC_COMMON_ERRNO_UTIL_H_

#include <string>

namespace ppc {

/// Thread-safe strerror: the human-readable message for `err`, e.g.
/// "Connection reset by peer". ::strerror writes into a process-global
/// static buffer, so two server threads formatting different errnos can
/// interleave each other's messages (or worse, race); this wraps
/// strerror_r with a stack buffer instead. Use it everywhere a Status
/// message embeds errno.
std::string ErrnoMessage(int err);

}  // namespace ppc

#endif  // PPC_COMMON_ERRNO_UTIL_H_
