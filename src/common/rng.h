#ifndef PPC_COMMON_RNG_H_
#define PPC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ppc {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library draws from a seeded Rng so that
/// tests, benchmarks and experiments are exactly reproducible. The generator
/// is cheap (4x uint64 state), has period 2^256-1 and passes BigCrush.
class Rng {
 public:
  /// Seeds the generator; the seed is expanded with SplitMix64 so that
  /// nearby seeds yield unrelated streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Returns a double uniformly distributed in [0, 1).
  double Uniform();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Returns an integer uniformly distributed in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a sample from the standard normal distribution
  /// (Marsaglia polar method with one cached deviate).
  double Gaussian();

  /// Returns a sample from N(mean, stddev^2).
  double Gaussian(double mean, double stddev);

  /// Returns true with probability p (p clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Forks a child generator with an independent stream, derived
  /// deterministically from this generator's state.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ppc

#endif  // PPC_COMMON_RNG_H_
