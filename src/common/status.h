#ifndef PPC_COMMON_STATUS_H_
#define PPC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace ppc {

/// Error categories used across the library. The public API reports
/// recoverable failures via Status / Result rather than exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kFailedPrecondition,
  /// A deadline elapsed before the operation completed. Distinct from
  /// kUnavailable so network callers can tell a timeout (retry may help)
  /// from a peer that is gone (reconnect first).
  kDeadlineExceeded,
  /// The other side of a connection is gone (clean close or reset).
  kUnavailable,
};

/// Returns a human-readable name for a status code ("OK", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value.
///
/// Mirrors the conventions of large C++ database codebases (Arrow, RocksDB):
/// functions that can fail return Status (or Result<T>), and callers either
/// propagate with PPC_RETURN_NOT_OK or assert with ok().
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "<CodeName>: <message>" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union: either holds a T or a non-OK Status. T need not
/// be default-constructible.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    PPC_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value; aborts if this Result holds an error.
  const T& value() const& {
    PPC_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    PPC_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    PPC_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define PPC_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::ppc::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define PPC_CONCAT_IMPL_(a, b) a##b
#define PPC_CONCAT_(a, b) PPC_CONCAT_IMPL_(a, b)
#define PPC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()
#define PPC_ASSIGN_OR_RETURN(lhs, expr) \
  PPC_ASSIGN_OR_RETURN_IMPL_(PPC_CONCAT_(_ppc_res_, __LINE__), lhs, expr)

}  // namespace ppc

#endif  // PPC_COMMON_STATUS_H_
