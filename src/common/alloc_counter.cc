#include "common/alloc_counter.h"

#include <cstdlib>
#include <new>

// Counting global operator new/delete. Pulled into a binary only when
// something in it references ThreadAllocationCount() (static-archive
// linking is per translation unit), so production binaries that never ask
// for the counter keep the default allocator. The implementations malloc/
// free directly — under ASan/TSan those are the intercepted entry points,
// so sanitizer coverage is unchanged.

namespace ppc {
namespace {

thread_local uint64_t t_allocations = 0;
thread_local uint64_t t_deallocations = 0;

void* CountedAlloc(std::size_t size) {
  ++t_allocations;
  // malloc(0) may return nullptr; operator new must not.
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t alignment) {
  ++t_allocations;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* ptr = nullptr;
  if (posix_memalign(&ptr, alignment, size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return ptr;
}

void CountedFree(void* ptr) {
  if (ptr == nullptr) return;
  ++t_deallocations;
  std::free(ptr);
}

}  // namespace

uint64_t ThreadAllocationCount() { return t_allocations; }
uint64_t ThreadDeallocationCount() { return t_deallocations; }

}  // namespace ppc

void* operator new(std::size_t size) {
  void* ptr = ppc::CountedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = ppc::CountedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ppc::CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ppc::CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr =
      ppc::CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* ptr =
      ppc::CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return ppc::CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return ppc::CountedAlignedAlloc(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { ppc::CountedFree(ptr); }
void operator delete[](void* ptr) noexcept { ppc::CountedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept {
  ppc::CountedFree(ptr);
}
void operator delete[](void* ptr, std::size_t) noexcept {
  ppc::CountedFree(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  ppc::CountedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  ppc::CountedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  ppc::CountedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  ppc::CountedFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  ppc::CountedFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  ppc::CountedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  ppc::CountedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  ppc::CountedFree(ptr);
}
