#ifndef PPC_COMMON_HASH_H_
#define PPC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace ppc {

/// 64-bit FNV-1a over bytes. Used wherever a hash feeds a seed or any
/// other reproducible quantity: unlike std::hash, the value is fixed by
/// the algorithm, so experiment runs are identical across standard
/// libraries and platforms.
constexpr uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (char c : data) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

}  // namespace ppc

#endif  // PPC_COMMON_HASH_H_
