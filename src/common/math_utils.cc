#include "common/math_utils.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace ppc {

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

double HypersphereVolume(int r, double radius) {
  PPC_DCHECK(r >= 1);
  const double half = static_cast<double>(r) / 2.0;
  return std::pow(M_PI, half) / std::tgamma(half + 1.0) *
         std::pow(radius, static_cast<double>(r));
}

double HypersphereRadiusForVolume(int r, double volume) {
  PPC_DCHECK(r >= 1 && volume >= 0.0);
  const double half = static_cast<double>(r) / 2.0;
  const double unit = std::pow(M_PI, half) / std::tgamma(half + 1.0);
  return std::pow(volume / unit, 1.0 / static_cast<double>(r));
}

double UnitCircleSegmentArea(double h) {
  h = Clamp(h, -1.0, 1.0);
  // Area beyond the chord at signed distance h:
  //   A(h) = acos(h) - h * sqrt(1 - h^2).
  return std::acos(h) - h * std::sqrt(std::max(0.0, 1.0 - h * h));
}

double ChordDistanceForAreaFraction(double fraction) {
  fraction = Clamp(fraction, 0.0, 1.0);
  const double target = fraction * M_PI;
  // A(h) decreases monotonically from pi at h=-1 to 0 at h=1; bisect.
  double lo = -1.0, hi = 1.0;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (UnitCircleSegmentArea(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  PPC_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double SampleStdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double sum = 0.0;
  for (double x : xs) {
    const double diff = x - mean;
    sum += diff * diff;
  }
  return std::sqrt(sum / static_cast<double>(xs.size() - 1));
}

double Median(std::vector<double> xs) {
  return MedianInPlace(xs.data(), xs.size());
}

double MedianInPlace(double* xs, size_t n) {
  if (n == 0) return 0.0;
  const size_t mid = n / 2;
  std::nth_element(xs, xs + mid, xs + n);
  if (n % 2 == 1) return xs[mid];
  const double upper = xs[mid];
  const double lower = *std::max_element(xs, xs + mid);
  return 0.5 * (lower + upper);
}

double ProportionLowerBound95(size_t successes, size_t trials) {
  if (trials == 0) return 0.0;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = 1.645;  // one-sided 95%
  return Clamp(p - z * std::sqrt(p * (1.0 - p) / n), 0.0, 1.0);
}

}  // namespace ppc
