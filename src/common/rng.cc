#include "common/rng.h"

#include <cmath>

#include "common/macros.h"

namespace ppc {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 significant bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  PPC_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PPC_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace ppc
