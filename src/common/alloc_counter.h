#ifndef PPC_COMMON_ALLOC_COUNTER_H_
#define PPC_COMMON_ALLOC_COUNTER_H_

#include <cstdint>

namespace ppc {

/// Per-thread count of heap allocations (every variant of operator new)
/// made since the thread started. Monotonically increasing; take a
/// difference around the code under test:
///
///   const uint64_t before = ThreadAllocationCount();
///   predictor.PredictBatchInto(points, n, out);
///   EXPECT_EQ(ThreadAllocationCount() - before, 0u);
///
/// The counting operator new/delete overrides live in the same translation
/// unit as this function, so any binary that references
/// ThreadAllocationCount() links the overrides and counts every allocation
/// it makes; binaries that never reference it keep the standard library's
/// allocator. Allocation, not byte, granularity — the zero-allocation
/// contract of the predict hot path is a count, not a size.
uint64_t ThreadAllocationCount();

/// Same counter for deallocations (operator delete), for balance checks.
uint64_t ThreadDeallocationCount();

}  // namespace ppc

#endif  // PPC_COMMON_ALLOC_COUNTER_H_
