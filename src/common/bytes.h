#ifndef PPC_COMMON_BYTES_H_
#define PPC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/status.h"

namespace ppc {

/// Little-endian binary writer used by the synopsis serialization code.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buffer_.append(s);
  }

  /// Bulk PutDouble: one append instead of `count` per-value calls. On the
  /// little-endian targets this code runs on, the memcpy emits exactly the
  /// bytes the per-value loop would (IEEE-754 values copied in order), so
  /// the serialized form is unchanged — this only removes per-element
  /// bookkeeping from the batch encode hot path.
  void PutDoubles(const double* values, size_t count) {
    buffer_.append(reinterpret_cast<const char*>(values),
                   count * sizeof(double));
  }

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  void PutRaw(const void* data, size_t size) {
    buffer_.append(reinterpret_cast<const char*>(data), size);
  }

  std::string buffer_;
};

/// Bounds-checked reader over a serialized buffer. All reads return
/// OutOfRange on truncated input instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(const std::string& buffer) : buffer_(buffer) {}

  Result<uint8_t> GetU8() {
    PPC_RETURN_NOT_OK(Require(1));
    return static_cast<uint8_t>(buffer_[pos_++]);
  }

  Result<uint32_t> GetU32() { return GetRaw<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetRaw<uint64_t>(); }
  Result<double> GetDouble() { return GetRaw<double>(); }

  /// Bulk GetDouble into caller storage: a single bounds check and memcpy
  /// for `count` values. Reads the same bytes the per-value loop would.
  Status GetDoubles(double* out, size_t count) {
    PPC_RETURN_NOT_OK(Require(count * sizeof(double)));
    std::memcpy(out, buffer_.data() + pos_, count * sizeof(double));
    pos_ += count * sizeof(double);
    return Status::OK();
  }

  Result<std::string> GetString() {
    PPC_ASSIGN_OR_RETURN(uint32_t size, GetU32());
    PPC_RETURN_NOT_OK(Require(size));
    std::string out = buffer_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  bool AtEnd() const { return pos_ == buffer_.size(); }
  size_t position() const { return pos_; }

 private:
  // PPC_RETURN_NOT_OK propagates into Result<T> returns via the implicit
  // Result(Status) constructor.
  Status Require(size_t bytes) const {
    if (pos_ + bytes > buffer_.size()) {
      return Status::OutOfRange("serialized buffer truncated at offset " +
                                std::to_string(pos_));
    }
    return Status::OK();
  }

  template <typename T>
  Result<T> GetRaw() {
    PPC_RETURN_NOT_OK(Require(sizeof(T)));
    T v;
    std::memcpy(&v, buffer_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::string& buffer_;
  size_t pos_ = 0;
};

}  // namespace ppc

#endif  // PPC_COMMON_BYTES_H_
