#ifndef PPC_COMMON_MATH_UTILS_H_
#define PPC_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <vector>

namespace ppc {

/// Numeric constants and small geometric / statistical helpers shared by the
/// clustering and LSH modules.

/// Clamps x to [lo, hi].
double Clamp(double x, double lo, double hi);

/// Volume of an r-dimensional hypersphere with radius `radius`:
///   V_r(R) = pi^(r/2) / Gamma(r/2 + 1) * R^r.
double HypersphereVolume(int r, double radius);

/// Radius of the r-dimensional hypersphere whose volume equals `volume`.
double HypersphereRadiusForVolume(int r, double volume);

/// Area of the circular segment cut from a unit circle by a chord at signed
/// distance h from the centre (h in [-1, 1]); the segment is the side *away*
/// from the centre direction of h. For h = -1 the area is the full circle
/// (pi), for h = 0 it is pi/2, for h = 1 it is 0.
double UnitCircleSegmentArea(double h);

/// Inverts UnitCircleSegmentArea: returns the signed chord distance h in
/// [-1, 1] such that the segment beyond h covers `fraction` of the unit
/// circle's area. `fraction` is clamped to [0, 1]. Monotone decreasing.
double ChordDistanceForAreaFraction(double fraction);

/// Squared Euclidean distance between equally-sized vectors.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Euclidean distance between equally-sized vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Arithmetic mean; returns 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); returns 0 for n < 2.
double SampleStdDev(const std::vector<double>& xs);

/// Median (averages the middle pair for even sizes); returns 0 for empty.
/// Copies the input (callers pass small vectors of density estimates).
double Median(std::vector<double> xs);

/// Median over xs[0..n), reordering xs in place (no allocation). Same
/// algorithm as Median, so the two agree bit for bit — the batched
/// predict path uses this over arena scratch where the scalar path
/// builds a vector.
double MedianInPlace(double* xs, size_t n);

/// Lower bound of the one-sided 95% confidence interval for a proportion
/// with `successes` out of `trials`, using the normal approximation
/// p - 1.645 * sqrt(p(1-p)/n), clamped to [0, 1]. Returns 0 if trials == 0.
double ProportionLowerBound95(size_t successes, size_t trials);

}  // namespace ppc

#endif  // PPC_COMMON_MATH_UTILS_H_
