#include "stats/column_stats.h"

#include <algorithm>

#include "storage/column.h"

namespace ppc {

ColumnStats ColumnStats::Compute(const Column& column, size_t bucket_count) {
  ColumnStats stats;
  std::vector<double> values = column.ToDoubleVector();
  stats.row_count = values.size();
  if (values.empty()) return stats;

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  stats.min = sorted.front();
  stats.max = sorted.back();
  size_t distinct = 1;
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] != sorted[i - 1]) ++distinct;
  }
  stats.distinct_count = distinct;
  stats.histogram = EquiDepthHistogram::Build(std::move(values), bucket_count);
  return stats;
}

}  // namespace ppc
