#ifndef PPC_STATS_COLUMN_STATS_H_
#define PPC_STATS_COLUMN_STATS_H_

#include <cstddef>
#include <vector>

#include "stats/equi_depth_histogram.h"

namespace ppc {

class Column;

/// Optimizer statistics for one base-table column: value bounds, estimated
/// number of distinct values, and an equi-depth histogram.
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  size_t distinct_count = 0;
  size_t row_count = 0;
  EquiDepthHistogram histogram;

  /// Computes statistics over a materialized column with `bucket_count`
  /// histogram buckets.
  static ColumnStats Compute(const Column& column, size_t bucket_count);

  /// Selectivity of `column <= v` under the histogram.
  double SelectivityLeq(double v) const { return histogram.SelectivityLeq(v); }

  /// Value at cumulative fraction `f` (inverse of SelectivityLeq).
  double ValueAtSelectivity(double f) const { return histogram.Quantile(f); }
};

}  // namespace ppc

#endif  // PPC_STATS_COLUMN_STATS_H_
