#ifndef PPC_STATS_EQUI_DEPTH_HISTOGRAM_H_
#define PPC_STATS_EQUI_DEPTH_HISTOGRAM_H_

#include <cstddef>
#include <vector>

namespace ppc {

/// Equi-depth (equi-height) histogram over a numeric column.
///
/// This is the statistic the query optimizer uses for selectivity
/// estimation, and the statistic the PPC framework's normalization step
/// f : query instance -> [0,1]^r relies on (Sec. II-B of the paper: the
/// framework "computes the predicate selectivities in the same way that the
/// query optimizer makes its selectivity estimations").
class EquiDepthHistogram {
 public:
  /// Builds a histogram with (up to) `bucket_count` equal-frequency buckets.
  /// Values are copied and sorted internally. An empty input produces an
  /// empty histogram for which all selectivities are 0.
  static EquiDepthHistogram Build(std::vector<double> values,
                                  size_t bucket_count);

  /// Fraction of rows with value <= v, with linear interpolation inside the
  /// containing bucket. Result in [0, 1].
  double SelectivityLeq(double v) const;

  /// Fraction of rows with value >= v.
  double SelectivityGeq(double v) const;

  /// Fraction of rows with lo <= value <= hi (0 when lo > hi).
  double SelectivityRange(double lo, double hi) const;

  /// Inverse of SelectivityLeq: smallest value v with SelectivityLeq(v)
  /// approximately equal to `fraction` (fraction clamped to [0,1]).
  /// Used to turn a sampled plan-space coordinate back into a query
  /// parameter value when generating workload instances.
  double Quantile(double fraction) const;

  double min() const { return boundaries_.empty() ? 0.0 : boundaries_.front(); }
  double max() const { return boundaries_.empty() ? 0.0 : boundaries_.back(); }
  size_t bucket_count() const {
    return boundaries_.empty() ? 0 : boundaries_.size() - 1;
  }
  size_t row_count() const { return row_count_; }
  bool empty() const { return row_count_ == 0; }

 private:
  // boundaries_[i], boundaries_[i+1] delimit bucket i; depths_[i] is that
  // bucket's row count. boundaries_.size() == depths_.size() + 1.
  std::vector<double> boundaries_;
  std::vector<size_t> depths_;
  size_t row_count_ = 0;
};

}  // namespace ppc

#endif  // PPC_STATS_EQUI_DEPTH_HISTOGRAM_H_
