#include "stats/streaming_histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/macros.h"
#include "common/math_utils.h"

namespace ppc {

StreamingHistogram::StreamingHistogram(size_t max_buckets, MergePolicy policy)
    : max_buckets_(max_buckets), policy_(policy) {
  PPC_CHECK_MSG(max_buckets >= 2, "histogram needs at least 2 buckets");
}

void StreamingHistogram::Insert(double position, double cost) {
  position = Clamp(position, 0.0, 1.0);
  ++total_count_;
  // Find insertion point among centroids.
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), position,
      [](const Bucket& b, double pos) { return b.centroid < pos; });
  if (it != buckets_.end() && it->centroid == position) {
    it->count += 1.0;
    it->cost_sum += cost;
    return;
  }
  buckets_.insert(it, Bucket{position, 1.0, cost});
  if (buckets_.size() > max_buckets_) {
    MergeAt(PickMergeIndex());
  }
}

size_t StreamingHistogram::PickMergeIndex() const {
  PPC_DCHECK(buckets_.size() >= 2);
  size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < buckets_.size(); ++i) {
    const Bucket& a = buckets_[i];
    const Bucket& b = buckets_[i + 1];
    const double gap = b.centroid - a.centroid;
    double score = 0.0;
    switch (policy_) {
      case MergePolicy::kMinVarianceIncrease:
        // Increase in within-bucket weighted variance caused by merging:
        // n_a*n_b/(n_a+n_b) * gap^2.
        score = a.count * b.count / (a.count + b.count) * gap * gap;
        break;
      case MergePolicy::kNearestCentroid:
        score = gap;
        break;
      case MergePolicy::kEquiWidth:
        // Prefer merges that keep bucket extents near-uniform: merge the
        // pair whose combined extent is smallest.
        double la, ra, lb, rb;
        BucketExtent(i, &la, &ra);
        BucketExtent(i + 1, &lb, &rb);
        score = rb - la;
        break;
    }
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

void StreamingHistogram::MergeAt(size_t i) {
  PPC_DCHECK(i + 1 < buckets_.size());
  Bucket& a = buckets_[i];
  const Bucket& b = buckets_[i + 1];
  const double total = a.count + b.count;
  a.centroid = (a.centroid * a.count + b.centroid * b.count) / total;
  a.count = total;
  a.cost_sum += b.cost_sum;
  buckets_.erase(buckets_.begin() + static_cast<ptrdiff_t>(i) + 1);
}

void StreamingHistogram::BucketExtent(size_t i, double* left,
                                      double* right) const {
  PPC_DCHECK(i < buckets_.size());
  const double c = buckets_[i].centroid;
  if (buckets_.size() == 1) {
    // A lone bucket is a point mass; spreading it over the domain would
    // fabricate support far from any observation.
    *left = *right = c;
    return;
  }
  // Interior edges at centroid midpoints; outer edges mirror the gap to
  // the single neighbour, clamped to the domain.
  *left = (i == 0)
              ? std::max(0.0, c - 0.5 * (buckets_[1].centroid - c))
              : 0.5 * (buckets_[i - 1].centroid + c);
  *right = (i + 1 == buckets_.size())
               ? std::min(1.0, c + 0.5 * (c - buckets_[i - 1].centroid))
               : 0.5 * (c + buckets_[i + 1].centroid);
  if (*right < *left) std::swap(*left, *right);
}

void StreamingHistogram::ExportProbe(double* left, double* right,
                                     double* count, double* centroid) const {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    BucketExtent(i, left + i, right + i);
    count[i] = buckets_[i].count;
    centroid[i] = buckets_[i].centroid;
  }
}

void StreamingHistogram::ExportProbeCosts(double* cost) const {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cost[i] = buckets_[i].cost_sum;
  }
}

double StreamingHistogram::EstimateCount(double lo, double hi) const {
  if (buckets_.empty() || lo > hi) return 0.0;
  double count = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double left, right;
    BucketExtent(i, &left, &right);
    const double width = right - left;
    if (width <= 0.0) {
      // Point mass: counted iff inside the range.
      if (buckets_[i].centroid >= lo && buckets_[i].centroid <= hi) {
        count += buckets_[i].count;
      }
      continue;
    }
    const double overlap =
        std::max(0.0, std::min(hi, right) - std::max(lo, left));
    count += buckets_[i].count * (overlap / width);
  }
  return count;
}

double StreamingHistogram::EstimateAverageCost(double lo, double hi) const {
  if (buckets_.empty() || lo > hi) return 0.0;
  double count = 0.0;
  double cost = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    double left, right;
    BucketExtent(i, &left, &right);
    const double width = right - left;
    double frac = 0.0;
    if (width <= 0.0) {
      frac = (buckets_[i].centroid >= lo && buckets_[i].centroid <= hi) ? 1.0
                                                                        : 0.0;
    } else {
      const double overlap =
          std::max(0.0, std::min(hi, right) - std::max(lo, left));
      frac = overlap / width;
    }
    count += buckets_[i].count * frac;
    cost += buckets_[i].cost_sum * frac;
  }
  return count > 0.0 ? cost / count : 0.0;
}

void StreamingHistogram::Clear() {
  buckets_.clear();
  total_count_ = 0;
}

void StreamingHistogram::SerializeTo(ByteWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(max_buckets_));
  writer->PutU8(static_cast<uint8_t>(policy_));
  writer->PutU64(total_count_);
  writer->PutU32(static_cast<uint32_t>(buckets_.size()));
  for (const Bucket& bucket : buckets_) {
    writer->PutDouble(bucket.centroid);
    writer->PutDouble(bucket.count);
    writer->PutDouble(bucket.cost_sum);
  }
}

Result<StreamingHistogram> StreamingHistogram::Deserialize(
    ByteReader* reader) {
  PPC_ASSIGN_OR_RETURN(uint32_t max_buckets, reader->GetU32());
  PPC_ASSIGN_OR_RETURN(uint8_t policy_byte, reader->GetU8());
  if (max_buckets < 2) {
    return Status::InvalidArgument("histogram max_buckets < 2");
  }
  if (policy_byte > static_cast<uint8_t>(MergePolicy::kEquiWidth)) {
    return Status::InvalidArgument("unknown histogram merge policy");
  }
  StreamingHistogram histogram(max_buckets,
                               static_cast<MergePolicy>(policy_byte));
  PPC_ASSIGN_OR_RETURN(uint64_t total, reader->GetU64());
  PPC_ASSIGN_OR_RETURN(uint32_t bucket_count, reader->GetU32());
  if (bucket_count > max_buckets) {
    return Status::InvalidArgument("bucket count exceeds budget");
  }
  histogram.total_count_ = total;
  histogram.buckets_.reserve(bucket_count);
  double prev_centroid = -1.0;
  for (uint32_t i = 0; i < bucket_count; ++i) {
    Bucket bucket;
    PPC_ASSIGN_OR_RETURN(bucket.centroid, reader->GetDouble());
    PPC_ASSIGN_OR_RETURN(bucket.count, reader->GetDouble());
    PPC_ASSIGN_OR_RETURN(bucket.cost_sum, reader->GetDouble());
    if (bucket.centroid < prev_centroid || bucket.count < 0.0) {
      return Status::InvalidArgument("malformed histogram bucket");
    }
    prev_centroid = bucket.centroid;
    histogram.buckets_.push_back(bucket);
  }
  return histogram;
}

std::string StreamingHistogram::DebugString() const {
  std::ostringstream os;
  os << "StreamingHistogram{buckets=" << buckets_.size()
     << ", total=" << total_count_ << ", [";
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (i) os << ", ";
    const double avg =
        buckets_[i].count > 0 ? buckets_[i].cost_sum / buckets_[i].count : 0.0;
    os << "(" << buckets_[i].centroid << ", n=" << buckets_[i].count
       << ", avg=" << avg << ")";
  }
  os << "]}";
  return os.str();
}

}  // namespace ppc
