#include "stats/equi_depth_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/math_utils.h"

namespace ppc {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             size_t bucket_count) {
  EquiDepthHistogram h;
  if (values.empty() || bucket_count == 0) return h;
  std::sort(values.begin(), values.end());
  h.row_count_ = values.size();

  const size_t n = values.size();
  bucket_count = std::min(bucket_count, n);
  h.boundaries_.push_back(values.front());
  size_t start = 0;
  for (size_t b = 0; b < bucket_count; ++b) {
    const size_t end = (b + 1) * n / bucket_count;  // exclusive
    if (end <= start) continue;
    // Duplicate runs may produce zero-width (point-mass) buckets whose
    // boundary equals the previous one; the query paths treat a bucket
    // with lo == hi as mass concentrated at that value.
    h.boundaries_.push_back(values[end - 1]);
    h.depths_.push_back(end - start);
    start = end;
  }
  return h;
}

double EquiDepthHistogram::SelectivityLeq(double v) const {
  if (empty()) return 0.0;
  if (v < boundaries_.front()) return 0.0;
  if (v >= boundaries_.back()) return 1.0;
  size_t cumulative = 0;
  for (size_t b = 0; b < depths_.size(); ++b) {
    const double lo = boundaries_[b];
    const double hi = boundaries_[b + 1];
    if (v < hi) {
      const double width = hi - lo;
      const double frac = width > 0.0 ? (v - lo) / width : 1.0;
      return (static_cast<double>(cumulative) +
              frac * static_cast<double>(depths_[b])) /
             static_cast<double>(row_count_);
    }
    cumulative += depths_[b];
  }
  return 1.0;
}

double EquiDepthHistogram::SelectivityGeq(double v) const {
  if (empty()) return 0.0;
  return Clamp(1.0 - SelectivityLeq(v), 0.0, 1.0);
}

double EquiDepthHistogram::SelectivityRange(double lo, double hi) const {
  if (empty() || lo > hi) return 0.0;
  return Clamp(SelectivityLeq(hi) - SelectivityLeq(lo), 0.0, 1.0);
}

double EquiDepthHistogram::Quantile(double fraction) const {
  if (empty()) return 0.0;
  fraction = Clamp(fraction, 0.0, 1.0);
  const double target = fraction * static_cast<double>(row_count_);
  double cumulative = 0.0;
  for (size_t b = 0; b < depths_.size(); ++b) {
    const double depth = static_cast<double>(depths_[b]);
    if (cumulative + depth >= target) {
      const double lo = boundaries_[b];
      const double hi = boundaries_[b + 1];
      const double frac = depth > 0.0 ? (target - cumulative) / depth : 0.0;
      return lo + frac * (hi - lo);
    }
    cumulative += depth;
  }
  return boundaries_.back();
}

}  // namespace ppc
