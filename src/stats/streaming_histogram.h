#ifndef PPC_STATS_STREAMING_HISTOGRAM_H_
#define PPC_STATS_STREAMING_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace ppc {

/// A bounded-bucket streaming histogram: the "database histogram" the paper
/// stores plan-space synopses in (Sec. IV-C).
///
/// Supports online insertion of (position, cost) observations, where
/// `position` is a Z-order-linearized plan-space coordinate in [0, 1], and
/// constant-time-per-bucket range queries for both the observation count
/// (plan density) and the average plan cost.
///
/// When insertion would exceed the bucket budget, the adjacent bucket pair
/// whose merge increases the weighted variance the least is consolidated
/// ("standard histogram construction techniques that choose boundaries to
/// minimize estimation error", Sec. IV-C). Each bucket costs 12 bytes by the
/// paper's accounting: a 4-byte boundary, a 4-byte count, and a 4-byte
/// average cost.
class StreamingHistogram {
 public:
  /// Merge policy; kMinVarianceIncrease is the default used everywhere,
  /// kEquiWidth exists for the histogram-policy ablation bench.
  enum class MergePolicy {
    kMinVarianceIncrease,
    kNearestCentroid,
    kEquiWidth,
  };

  explicit StreamingHistogram(
      size_t max_buckets,
      MergePolicy policy = MergePolicy::kMinVarianceIncrease);

  /// Inserts one observation at `position` with execution cost `cost`.
  void Insert(double position, double cost);

  /// Estimated number of observations with position in [lo, hi], with linear
  /// interpolation across partially-covered buckets.
  double EstimateCount(double lo, double hi) const;

  /// Exports the per-bucket probe table the vectorized range-count kernel
  /// (simd::HistogramRangeCount) consumes: bucket extents via
  /// BucketExtent, raw counts and centroids, one entry per bucket in
  /// bucket order. Each output array must hold bucket_count() doubles.
  /// The values are exactly what EstimateCount computes internally, so a
  /// kernel fed this table reproduces EstimateCount bit for bit — the
  /// batched path amortizes the extent computation once per (histogram,
  /// batch) instead of once per (point, bucket).
  void ExportProbe(double* left, double* right, double* count,
                   double* centroid) const;

  /// Companion to ExportProbe for the cost-estimating kernel
  /// (simd::HistogramRangeCountCost): per-bucket cost sums, one entry per
  /// bucket in bucket order. `cost` must hold bucket_count() doubles.
  void ExportProbeCosts(double* cost) const;

  /// Count-weighted average cost of observations in [lo, hi]. Returns 0
  /// when the estimated count is 0.
  double EstimateAverageCost(double lo, double hi) const;

  /// Total number of inserted observations.
  size_t TotalCount() const { return total_count_; }

  size_t bucket_count() const { return buckets_.size(); }
  size_t max_buckets() const { return max_buckets_; }

  /// Space consumption under the paper's 12-bytes-per-bucket accounting
  /// (capacity, not current occupancy: the budget is reserved up front).
  size_t SpaceBytes() const { return max_buckets_ * 12; }

  /// Drops all contents (used when drift detection resets a template).
  void Clear();

  /// Human-readable bucket dump for debugging and examples.
  std::string DebugString() const;

  /// Appends a binary snapshot (configuration + buckets) to `writer`.
  void SerializeTo(ByteWriter* writer) const;

  /// Reconstructs a histogram from a snapshot. Fails with OutOfRange on
  /// truncation and InvalidArgument on malformed content.
  static Result<StreamingHistogram> Deserialize(ByteReader* reader);

 private:
  struct Bucket {
    double centroid = 0.0;
    double count = 0.0;
    double cost_sum = 0.0;
  };

  /// Index of the best adjacent pair (i, i+1) to merge under the policy.
  size_t PickMergeIndex() const;
  void MergeAt(size_t i);
  /// Extent [left, right) over which bucket i's mass is assumed spread:
  /// midpoints to neighbouring centroids, clamped to [0, 1] at the ends.
  void BucketExtent(size_t i, double* left, double* right) const;

  size_t max_buckets_;
  MergePolicy policy_;
  std::vector<Bucket> buckets_;  // sorted by centroid
  size_t total_count_ = 0;
};

}  // namespace ppc

#endif  // PPC_STATS_STREAMING_HISTOGRAM_H_
