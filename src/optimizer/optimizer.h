#ifndef PPC_OPTIMIZER_OPTIMIZER_H_
#define PPC_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/cost_model.h"
#include "plan/fingerprint.h"
#include "plan/plan_node.h"
#include "workload/query_template.h"

namespace ppc {

/// Per-template metadata resolved once against the catalog so that repeated
/// optimizations of the same template avoid catalog lookups. Also consumed
/// by the plan-cost evaluator when replaying a plan at a different
/// plan-space point.
struct PreparedTemplate {
  struct TableInfo {
    std::string name;
    double rows = 0.0;
    double width = 0.0;
    /// Indices into tmpl->params of parameters on this table.
    std::vector<int> params;
  };

  struct EdgeInfo {
    int left_table = -1;
    int right_table = -1;
    std::string left_column;
    std::string right_column;
    double left_ndv = 1.0;
    double right_ndv = 1.0;
    /// 1 / max(ndv_left, ndv_right): the join predicate's selectivity.
    double selectivity = 1.0;
    bool left_indexed = false;
    bool right_indexed = false;
  };

  const QueryTemplate* tmpl = nullptr;
  std::vector<TableInfo> tables;
  std::vector<EdgeInfo> edges;
  /// Table index owning each parameter.
  std::vector<int> param_table;
  /// Whether each parameter's column has a secondary index.
  std::vector<bool> param_indexed;

  /// Combined selectivity of the given parameters at point `sels`
  /// (independence assumption, the textbook optimizer model).
  double CombinedSelectivity(const std::vector<int>& params,
                             const std::vector<double>& sels) const;
};

/// Output of one optimizer call.
struct OptimizationResult {
  std::unique_ptr<PlanNode> plan;
  PlanId plan_id = kNullPlanId;
  double estimated_cost = 0.0;
  double estimated_rows = 0.0;
};

/// Join-enumeration options.
struct OptimizerOptions {
  /// Classic System-R restriction: the inner (right/build) input of every
  /// join is a base relation, yielding left-deep trees. Bushy enumeration
  /// (false) explores more shapes but fragments plan diagrams into many
  /// more, smaller optimality regions.
  bool left_deep_only = true;
  /// Fuzzy cost comparison: a challenger replaces the incumbent plan only
  /// when cheaper by this factor (PostgreSQL's compare_path_costs_fuzzily
  /// idiom). Keeps near-tie plan choices stable across neighbouring
  /// plan-space points instead of flipping on microscopic cost deltas.
  double cost_fuzz = 1.02;
};

/// A System-R-style cost-based query optimizer.
///
/// Plan choices: sequential vs. (unclustered secondary) index scans for base
/// relations; hash, block-nested-loop, index-nested-loop and sort-merge
/// joins; exhaustive dynamic-programming join enumeration over connected
/// subsets (left-deep by default, bushy optionally). Cardinalities come from
/// catalog statistics with the usual attribute-independence assumption.
///
/// The optimizer consumes *selectivities*, not parameter values: exactly the
/// decomposition Omega = plan(f(q)) of paper Sec. II-A. The normalization f
/// lives in the workload module (SelectivityMapper).
class Optimizer {
 public:
  explicit Optimizer(const Catalog* catalog,
                     CostModelParams params = CostModelParams(),
                     OptimizerOptions options = OptimizerOptions());

  /// Resolves a template against the catalog (validates tables, columns,
  /// joins, indexes). The PreparedTemplate borrows the QueryTemplate, which
  /// must outlive it.
  Result<PreparedTemplate> Prepare(const QueryTemplate& tmpl) const;

  /// Finds the cheapest plan for the template at the given plan-space point
  /// (`selectivities[i]` = selectivity of params[i], each in [0, 1]).
  Result<OptimizationResult> Optimize(
      const PreparedTemplate& prepared,
      const std::vector<double>& selectivities) const;

  /// Convenience overload: Prepare + Optimize.
  Result<OptimizationResult> Optimize(
      const QueryTemplate& tmpl,
      const std::vector<double>& selectivities) const;

  const CostModel& cost_model() const { return cost_model_; }
  const Catalog* catalog() const { return catalog_; }

  const OptimizerOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  CostModel cost_model_;
  OptimizerOptions options_;
};

}  // namespace ppc

#endif  // PPC_OPTIMIZER_OPTIMIZER_H_
