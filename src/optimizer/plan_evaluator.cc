#include "optimizer/plan_evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace ppc {

namespace {

struct EvalState {
  double rows = 0.0;
  double width = 0.0;
  double cost = 0.0;
  /// Bitmask of template table indices covered by this subtree.
  size_t table_mask = 0;
};

double ClampRows(double rows) { return std::max(1.0, rows); }

class Evaluator {
 public:
  Evaluator(const PreparedTemplate& prep, const CostModel& cm,
            const std::vector<double>& sels)
      : prep_(prep), cm_(cm), sels_(sels) {}

  Result<EvalState> Eval(const PlanNode& node) {
    switch (node.kind) {
      case PlanNode::Kind::kScan:
        return EvalScan(node);
      case PlanNode::Kind::kJoin:
        return EvalJoin(node);
      case PlanNode::Kind::kAggregate: {
        PPC_ASSIGN_OR_RETURN(EvalState child, Eval(*node.left));
        child.cost += cm_.AggregateCost(child.rows);
        return child;
      }
    }
    return Status::Internal("unknown plan node kind");
  }

 private:
  Result<int> TableIndex(const std::string& name) const {
    for (size_t t = 0; t < prep_.tables.size(); ++t) {
      if (prep_.tables[t].name == name) return static_cast<int>(t);
    }
    return Status::InvalidArgument("plan references table " + name +
                                   " outside the template");
  }

  double ParamSel(int p) const {
    return Clamp(sels_[static_cast<size_t>(p)], 0.0, 1.0);
  }

  double CombinedSel(const std::vector<int>& params) const {
    double s = 1.0;
    for (int p : params) s *= ParamSel(p);
    return s;
  }

  Result<EvalState> EvalScan(const PlanNode& node) {
    PPC_ASSIGN_OR_RETURN(int t, TableIndex(node.table));
    const auto& info = prep_.tables[static_cast<size_t>(t)];
    for (int p : node.param_predicates) {
      if (p < 0 || static_cast<size_t>(p) >= sels_.size()) {
        return Status::InvalidArgument("parameter index out of range");
      }
    }
    EvalState state;
    state.table_mask = size_t{1} << t;
    state.width = info.width;
    state.rows = ClampRows(info.rows * CombinedSel(node.param_predicates));
    if (node.scan_method == ScanMethod::kSeqScan) {
      state.cost = cm_.SeqScanCost(info.rows, info.width,
                                   node.param_predicates.size());
      return state;
    }
    // Index scan: find the driving parameter (the one on the indexed
    // column). If absent the scan is an index-nested-loop inner, which the
    // parent join prices; standalone evaluation is a structural error.
    for (int p : node.param_predicates) {
      const auto& param =
          prep_.tmpl->params[static_cast<size_t>(p)];
      if (param.column == node.index_column && param.table == node.table) {
        state.cost = cm_.IndexScanCost(info.rows, info.width, ParamSel(p),
                                       node.param_predicates.size() - 1);
        return state;
      }
    }
    return Status::InvalidArgument(
        "index scan on " + node.table + "." + node.index_column +
        " has no driving parameter (INL inner evaluated standalone?)");
  }

  Result<EvalState> EvalJoin(const PlanNode& node) {
    PPC_ASSIGN_OR_RETURN(EvalState left, Eval(*node.left));

    // Resolve the right side's table mask without recursing (needed for
    // INL, where the right child is priced as probes, not a scan).
    EvalState right;
    if (node.join_method == JoinMethod::kIndexNestedLoop) {
      if (node.right == nullptr ||
          node.right->kind != PlanNode::Kind::kScan ||
          node.right->scan_method != ScanMethod::kIndexScan) {
        return Status::InvalidArgument(
            "index-nested-loop join requires an index-scan inner");
      }
      PPC_ASSIGN_OR_RETURN(int t, TableIndex(node.right->table));
      const auto& info = prep_.tables[static_cast<size_t>(t)];
      right.table_mask = size_t{1} << t;
      right.width = info.width;
      right.rows =
          ClampRows(info.rows * CombinedSel(node.right->param_predicates));
    } else {
      PPC_ASSIGN_OR_RETURN(right, Eval(*node.right));
    }

    // Combined selectivity of every join edge crossing the partition —
    // identical to the optimizer's cardinality model.
    double join_sel = 1.0;
    bool connected = false;
    for (const auto& edge : prep_.edges) {
      const size_t lbit = size_t{1} << edge.left_table;
      const size_t rbit = size_t{1} << edge.right_table;
      const bool crosses =
          ((left.table_mask & lbit) && (right.table_mask & rbit)) ||
          ((left.table_mask & rbit) && (right.table_mask & lbit));
      if (crosses) {
        join_sel *= edge.selectivity;
        connected = true;
      }
    }
    if (!connected) {
      return Status::InvalidArgument("plan contains a Cartesian product");
    }

    EvalState out;
    out.table_mask = left.table_mask | right.table_mask;
    out.width = left.width + right.width;
    out.rows = ClampRows(left.rows * right.rows * join_sel);

    switch (node.join_method) {
      case JoinMethod::kHashJoin:
        out.cost =
            left.cost + right.cost + cm_.HashJoinCost(left.rows, right.rows);
        break;
      case JoinMethod::kBlockNestedLoop:
        out.cost = left.cost + right.cost +
                   cm_.BlockNestedLoopCost(left.rows, right.rows, right.width);
        break;
      case JoinMethod::kSortMergeJoin:
        out.cost = left.cost + right.cost +
                   cm_.SortMergeCost(left.rows, right.rows);
        break;
      case JoinMethod::kIndexNestedLoop: {
        PPC_ASSIGN_OR_RETURN(int inner_t, TableIndex(node.right->table));
        const auto& inner_info = prep_.tables[static_cast<size_t>(inner_t)];
        // Locate the probed edge: the one whose inner-side column matches
        // the inner index column.
        double inner_ndv = 1.0;
        bool found = false;
        for (const auto& edge : prep_.edges) {
          if (edge.right_table == inner_t &&
              edge.right_column == node.right->index_column &&
              (left.table_mask & (size_t{1} << edge.left_table))) {
            inner_ndv = edge.right_ndv;
            found = true;
            break;
          }
          if (edge.left_table == inner_t &&
              edge.left_column == node.right->index_column &&
              (left.table_mask & (size_t{1} << edge.right_table))) {
            inner_ndv = edge.left_ndv;
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::InvalidArgument(
              "index-nested-loop probe column does not match a join edge");
        }
        const double matches_per_probe =
            std::max(inner_info.rows / inner_ndv, 1e-6);
        const double probe_cost = cm_.IndexNestedLoopCost(
            left.rows, inner_info.rows, inner_info.width, matches_per_probe);
        const double residual_cpu =
            left.rows * matches_per_probe *
            cm_.params().cpu_operator_cost *
            static_cast<double>(node.right->param_predicates.size());
        out.cost = left.cost + probe_cost + residual_cpu;
        break;
      }
    }
    return out;
  }

  const PreparedTemplate& prep_;
  const CostModel& cm_;
  const std::vector<double>& sels_;
};

}  // namespace

Result<PlanEvaluation> EvaluatePlanAtPoint(
    const PreparedTemplate& prep, const CostModel& cost_model,
    const PlanNode& plan, const std::vector<double>& selectivities) {
  if (selectivities.size() != prep.tmpl->params.size()) {
    return Status::InvalidArgument("selectivity vector arity mismatch");
  }
  Evaluator evaluator(prep, cost_model, selectivities);
  PPC_ASSIGN_OR_RETURN(EvalState state, evaluator.Eval(plan));
  PlanEvaluation eval;
  // For aggregate roots Eval propagates the child cardinality, so this is
  // the pre-aggregation row count, matching OptimizationResult.
  eval.rows = state.rows;
  eval.cost = state.cost;
  return eval;
}

}  // namespace ppc
