#ifndef PPC_OPTIMIZER_PLAN_EVALUATOR_H_
#define PPC_OPTIMIZER_PLAN_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "optimizer/cost_model.h"
#include "optimizer/optimizer.h"
#include "plan/plan_node.h"

namespace ppc {

/// Cardinality and cost of one plan evaluated at one plan-space point.
struct PlanEvaluation {
  double rows = 0.0;
  double cost = 0.0;
};

/// Replays an arbitrary plan of `prep`'s template at the plan-space point
/// `selectivities`, pricing every operator with the same cost model the
/// optimizer used. This defines the paper's cost(x, P) for *any* plan P at
/// *any* point x — in particular the true cost of executing a stale cached
/// plan at a point where it is no longer optimal.
///
/// Returns InvalidArgument if the plan's structure does not belong to the
/// template (unknown table / parameter indices out of range).
Result<PlanEvaluation> EvaluatePlanAtPoint(
    const PreparedTemplate& prep, const CostModel& cost_model,
    const PlanNode& plan, const std::vector<double>& selectivities);

}  // namespace ppc

#endif  // PPC_OPTIMIZER_PLAN_EVALUATOR_H_
