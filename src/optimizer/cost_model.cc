#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace ppc {

double CostModel::Pages(double rows, double row_width) const {
  return std::max(1.0, std::ceil(rows * row_width / p_.page_size_bytes));
}

double CostModel::SeqScanCost(double table_rows, double row_width,
                              size_t predicate_count) const {
  const double pages = Pages(table_rows, row_width);
  return pages * p_.seq_page_cost + table_rows * p_.cpu_tuple_cost +
         table_rows * p_.cpu_operator_cost *
             static_cast<double>(predicate_count);
}

double CostModel::IndexScanCost(double table_rows, double row_width,
                                double index_selectivity,
                                size_t residual_predicate_count) const {
  const double matching = std::max(0.0, index_selectivity * table_rows);
  const double pages = Pages(table_rows, row_width);
  const double descent =
      std::max(1.0, std::log(std::max(2.0, table_rows)) /
                        std::log(p_.index_fanout));
  // Expected distinct heap pages touched when fetching `matching` rows
  // spread uniformly over `pages` pages.
  const double heap_pages =
      pages * (1.0 - std::exp(-matching / pages));
  return descent * p_.random_page_cost + heap_pages * p_.random_page_cost +
         matching * (p_.cpu_tuple_cost +
                     p_.cpu_operator_cost *
                         static_cast<double>(residual_predicate_count + 1));
}

double CostModel::IndexProbeCost(double table_rows, double row_width,
                                 double matches) const {
  const double descent =
      std::max(1.0, std::log(std::max(2.0, table_rows)) /
                        std::log(p_.index_fanout));
  const double pages = Pages(table_rows, row_width);
  const double heap_pages =
      std::min(std::max(0.0, matches), pages);
  return descent * p_.random_page_cost * 0.5 +  // upper levels cached
         heap_pages * p_.random_page_cost +
         std::max(0.0, matches) * p_.cpu_tuple_cost;
}

double CostModel::BlockNestedLoopCost(double left_rows, double right_rows,
                                      double right_width) const {
  // Inner side rescanned per block of the outer; model as left_rows *
  // right_pages page touches (memory-resident blocks soften the quadratic
  // term) plus per-pair CPU.
  const double right_pages = Pages(right_rows, right_width);
  const double outer_blocks =
      std::max(1.0, std::ceil(left_rows / p_.bnl_block_rows));
  return outer_blocks * right_pages * p_.seq_page_cost +
         left_rows * right_rows * p_.cpu_operator_cost;
}

double CostModel::IndexNestedLoopCost(double left_rows,
                                      double inner_table_rows,
                                      double inner_row_width,
                                      double matches_per_probe) const {
  return left_rows * IndexProbeCost(inner_table_rows, inner_row_width,
                                    matches_per_probe);
}

double CostModel::HashJoinCost(double left_rows, double right_rows) const {
  return right_rows * p_.hash_build_cost_per_row +
         left_rows * (p_.cpu_tuple_cost + p_.cpu_operator_cost) +
         right_rows * p_.cpu_tuple_cost;
}

double CostModel::SortMergeCost(double left_rows, double right_rows) const {
  auto sort = [this](double rows) {
    if (rows < 2.0) return 0.0;
    return rows * std::log2(rows) * p_.sort_cost_per_row_log;
  };
  return sort(left_rows) + sort(right_rows) +
         (left_rows + right_rows) * p_.cpu_tuple_cost;
}

double CostModel::AggregateCost(double rows) const {
  return rows * p_.cpu_operator_cost;
}

}  // namespace ppc
