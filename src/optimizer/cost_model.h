#ifndef PPC_OPTIMIZER_COST_MODEL_H_
#define PPC_OPTIMIZER_COST_MODEL_H_

#include <cstddef>

namespace ppc {

/// Tunable constants of the disk+CPU cost model. Defaults are in the spirit
/// of System-R / PostgreSQL: sequential page reads are the unit cost,
/// random reads cost more, per-tuple CPU work costs a small fraction.
struct CostModelParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 2.5;
  double cpu_tuple_cost = 0.01;
  double cpu_operator_cost = 0.0025;
  double hash_build_cost_per_row = 0.015;
  double sort_cost_per_row_log = 0.02;
  /// Outer rows per buffered block in block-nested-loop joins.
  double bnl_block_rows = 128.0;
  /// Bytes per disk page for pages(rows) computations.
  double page_size_bytes = 8192.0;
  /// B+-tree fanout used for index descent depth.
  double index_fanout = 256.0;
};

/// The optimizer's arithmetic cost model. Pure functions of cardinalities
/// and physical parameters: the same model prices candidate plans during
/// optimization and replays executed plans at their *true* plan-space point
/// in the execution simulator, so "cost of running plan P at point x" is
/// well-defined for every (P, x) pair (paper's cost(x, P)).
class CostModel {
 public:
  explicit CostModel(CostModelParams params = CostModelParams())
      : p_(params) {}

  const CostModelParams& params() const { return p_; }

  /// Number of pages occupied by `rows` rows of `row_width` bytes.
  double Pages(double rows, double row_width) const;

  /// Full sequential scan applying `predicate_count` cheap predicates.
  double SeqScanCost(double table_rows, double row_width,
                     size_t predicate_count) const;

  /// Index scan returning `index_selectivity * table_rows` heap rows via an
  /// unclustered secondary index; remaining predicates are applied as
  /// filters on fetched rows. Page fetches follow the standard
  /// distinct-page approximation pages * (1 - e^{-matching/pages}).
  double IndexScanCost(double table_rows, double row_width,
                       double index_selectivity,
                       size_t residual_predicate_count) const;

  /// One index probe returning `matches` rows (used per outer row by
  /// index-nested-loop join).
  double IndexProbeCost(double table_rows, double row_width,
                        double matches) const;

  /// Block-nested-loop join of materialized inputs.
  double BlockNestedLoopCost(double left_rows, double right_rows,
                             double right_width) const;

  /// Index-nested-loop join: one index probe on the inner per outer row.
  double IndexNestedLoopCost(double left_rows, double inner_table_rows,
                             double inner_row_width,
                             double matches_per_probe) const;

  /// Hash join; the build side is the right input by convention.
  double HashJoinCost(double left_rows, double right_rows) const;

  /// Sort-merge join (prices both sorts plus the merge).
  double SortMergeCost(double left_rows, double right_rows) const;

  /// Final aggregation over `rows` input rows.
  double AggregateCost(double rows) const;

 private:
  CostModelParams p_;
};

}  // namespace ppc

#endif  // PPC_OPTIMIZER_COST_MODEL_H_
