#include "optimizer/robust_plan.h"

#include <algorithm>
#include <limits>
#include <map>

#include "optimizer/plan_evaluator.h"

namespace ppc {

Result<RobustPlanResult> SelectRobustPlan(
    const Optimizer& optimizer, const PreparedTemplate& prepared,
    const std::vector<std::vector<double>>& sample_points) {
  if (sample_points.empty()) {
    return Status::InvalidArgument("robust selection needs sample points");
  }

  // Harvest candidates and per-point optimal costs.
  struct Candidate {
    std::unique_ptr<PlanNode> plan;
    double cost_sum = 0.0;
    double worst_ratio = 1.0;
    bool valid = true;
  };
  std::map<PlanId, Candidate> candidates;
  std::vector<double> optimal_costs;
  optimal_costs.reserve(sample_points.size());
  RobustPlanResult result;

  for (const auto& point : sample_points) {
    PPC_ASSIGN_OR_RETURN(OptimizationResult opt,
                         optimizer.Optimize(prepared, point));
    ++result.optimizer_calls;
    optimal_costs.push_back(opt.estimated_cost);
    auto it = candidates.find(opt.plan_id);
    if (it == candidates.end()) {
      Candidate candidate;
      candidate.plan = std::move(opt.plan);
      candidates.emplace(opt.plan_id, std::move(candidate));
    }
  }
  result.candidates = candidates.size();

  // Replay every candidate at every sample point.
  for (auto& [plan_id, candidate] : candidates) {
    for (size_t i = 0; i < sample_points.size(); ++i) {
      auto eval = EvaluatePlanAtPoint(prepared, optimizer.cost_model(),
                                      *candidate.plan, sample_points[i]);
      if (!eval.ok()) {
        // A candidate that cannot be replayed everywhere (should not
        // happen for optimizer-produced plans) is disqualified.
        candidate.valid = false;
        break;
      }
      candidate.cost_sum += eval.value().cost;
      if (optimal_costs[i] > 0.0) {
        candidate.worst_ratio = std::max(
            candidate.worst_ratio, eval.value().cost / optimal_costs[i]);
      }
    }
  }

  // Pick the minimum-average-cost candidate.
  double best_avg = std::numeric_limits<double>::infinity();
  PlanId best_id = kNullPlanId;
  for (const auto& [plan_id, candidate] : candidates) {
    if (!candidate.valid) continue;
    const double avg =
        candidate.cost_sum / static_cast<double>(sample_points.size());
    if (avg < best_avg) {
      best_avg = avg;
      best_id = plan_id;
    }
  }
  if (best_id == kNullPlanId) {
    return Status::Internal("no replayable robust candidate");
  }
  Candidate& winner = candidates.at(best_id);
  result.plan = std::move(winner.plan);
  result.plan_id = best_id;
  result.average_cost = best_avg;
  result.worst_case_suboptimality = winner.worst_ratio;
  return result;
}

}  // namespace ppc
