#include "optimizer/contextual_optimizer.h"

#include "common/math_utils.h"
#include "optimizer/plan_evaluator.h"

namespace ppc {

CostModelParams SystemContext::Apply(const CostModelParams& disk_bound) const {
  const double p = Clamp(memory_pressure, 0.0, 1.0);
  CostModelParams params = disk_bound;
  // Memory-resident anchor: random reads approach sequential cost, hash
  // builds stay in cache; disk-bound anchor: the configured base values.
  const double resident_random = 1.05;   // random ~ sequential when cached
  const double resident_hash = 0.25 * disk_bound.hash_build_cost_per_row;
  params.random_page_cost =
      resident_random + p * (disk_bound.random_page_cost - resident_random);
  params.hash_build_cost_per_row =
      resident_hash + p * (disk_bound.hash_build_cost_per_row - resident_hash);
  // Page I/O as a whole scales down when resident: model by shrinking both
  // page costs proportionally at low pressure.
  const double io_scale = 0.25 + 0.75 * p;
  params.seq_page_cost *= io_scale;
  params.random_page_cost *= io_scale;
  return params;
}

ContextualOptimizer::ContextualOptimizer(const Catalog* catalog,
                                         CostModelParams disk_bound_params,
                                         OptimizerOptions options)
    : catalog_(catalog),
      disk_bound_params_(disk_bound_params),
      options_(options) {
  PPC_CHECK(catalog != nullptr);
}

Optimizer ContextualOptimizer::OptimizerFor(
    const SystemContext& context) const {
  return Optimizer(catalog_, context.Apply(disk_bound_params_), options_);
}

Result<PreparedTemplate> ContextualOptimizer::Prepare(
    const QueryTemplate& tmpl) const {
  return Optimizer(catalog_, disk_bound_params_, options_).Prepare(tmpl);
}

Result<OptimizationResult> ContextualOptimizer::Optimize(
    const PreparedTemplate& prepared,
    const std::vector<double>& selectivities,
    const SystemContext& context) const {
  return OptimizerFor(context).Optimize(prepared, selectivities);
}

Result<OptimizationResult> ContextualOptimizer::OptimizeExtended(
    const PreparedTemplate& prepared,
    const std::vector<double>& extended_point) const {
  if (extended_point.size() != prepared.tmpl->params.size() + 1) {
    return Status::InvalidArgument(
        "extended point must have r + 1 coordinates");
  }
  SystemContext context{extended_point.back()};
  std::vector<double> selectivities(extended_point.begin(),
                                    extended_point.end() - 1);
  return Optimize(prepared, selectivities, context);
}

Result<double> ContextualOptimizer::CostAtExtended(
    const PreparedTemplate& prepared, const PlanNode& plan,
    const std::vector<double>& extended_point) const {
  if (extended_point.size() != prepared.tmpl->params.size() + 1) {
    return Status::InvalidArgument(
        "extended point must have r + 1 coordinates");
  }
  SystemContext context{extended_point.back()};
  std::vector<double> selectivities(extended_point.begin(),
                                    extended_point.end() - 1);
  CostModel cost_model(context.Apply(disk_bound_params_));
  PPC_ASSIGN_OR_RETURN(
      PlanEvaluation eval,
      EvaluatePlanAtPoint(prepared, cost_model, plan, selectivities));
  return eval.cost;
}

}  // namespace ppc
