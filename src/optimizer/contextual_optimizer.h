#ifndef PPC_OPTIMIZER_CONTEXTUAL_OPTIMIZER_H_
#define PPC_OPTIMIZER_CONTEXTUAL_OPTIMIZER_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/optimizer.h"

namespace ppc {

/// System context visible to the optimizer — the paper's Sec. VII first
/// extension: "modeling the system context as optimizer parameters would
/// make the system more robust and adaptive to context changes."
///
/// A single normalized dimension is modeled here: memory pressure. At 0
/// the working set is memory-resident (random page reads nearly free,
/// hash tables cheap); at 1 the system is disk-bound (random reads cost
/// several sequential reads, large hash builds spill).
struct SystemContext {
  double memory_pressure = 1.0;

  /// Interpolates a cost model between the memory-resident and disk-bound
  /// regimes anchored at `disk_bound` (the configured base parameters).
  CostModelParams Apply(const CostModelParams& disk_bound) const;
};

/// An optimizer whose plan choice depends on both predicate selectivities
/// and the current system context. Pairs with the PPC framework by
/// treating the context as one extra plan-space dimension: a point is
/// (sel_1, ..., sel_r, memory_pressure) in [0,1]^(r+1).
///
/// PreparedTemplate is context-independent (it caches only catalog
/// statistics), so one Prepare() serves every context.
class ContextualOptimizer {
 public:
  ContextualOptimizer(const Catalog* catalog,
                      CostModelParams disk_bound_params = CostModelParams(),
                      OptimizerOptions options = OptimizerOptions());

  /// Resolves a template against the catalog (context-independent).
  Result<PreparedTemplate> Prepare(const QueryTemplate& tmpl) const;

  /// Optimizes at the given selectivities under the given context.
  Result<OptimizationResult> Optimize(const PreparedTemplate& prepared,
                                      const std::vector<double>& selectivities,
                                      const SystemContext& context) const;

  /// Optimizes at an extended plan-space point whose last coordinate is
  /// the context dimension: (sel_1..sel_r, memory_pressure).
  Result<OptimizationResult> OptimizeExtended(
      const PreparedTemplate& prepared,
      const std::vector<double>& extended_point) const;

  /// Cost of executing `plan` at the extended point (cost-model replay
  /// under the point's context) — the contextual analogue of
  /// EvaluatePlanAtPoint.
  Result<double> CostAtExtended(const PreparedTemplate& prepared,
                                const PlanNode& plan,
                                const std::vector<double>& extended_point)
      const;

 private:
  Optimizer OptimizerFor(const SystemContext& context) const;

  const Catalog* catalog_;
  CostModelParams disk_bound_params_;
  OptimizerOptions options_;
};

}  // namespace ppc

#endif  // PPC_OPTIMIZER_CONTEXTUAL_OPTIMIZER_H_
