#include "optimizer/optimizer.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/math_utils.h"

namespace ppc {

namespace {

constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

/// Dynamic-programming table entry: the best plan found for one subset of
/// the template's tables.
struct DpEntry {
  double rows = 0.0;
  double width = 0.0;
  double cost = kInfiniteCost;
  std::unique_ptr<PlanNode> plan;

  bool valid() const { return plan != nullptr; }
};

double ClampRows(double rows) { return std::max(1.0, rows); }

}  // namespace

double PreparedTemplate::CombinedSelectivity(
    const std::vector<int>& param_ids, const std::vector<double>& sels) const {
  double s = 1.0;
  for (int p : param_ids) {
    s *= Clamp(sels[static_cast<size_t>(p)], 0.0, 1.0);
  }
  return s;
}

Optimizer::Optimizer(const Catalog* catalog, CostModelParams params,
                     OptimizerOptions options)
    : catalog_(catalog), cost_model_(params), options_(options) {
  PPC_CHECK(catalog != nullptr);
}

Result<PreparedTemplate> Optimizer::Prepare(const QueryTemplate& tmpl) const {
  if (tmpl.tables.empty()) {
    return Status::InvalidArgument("template " + tmpl.name + " has no tables");
  }
  if (tmpl.tables.size() > 16) {
    return Status::InvalidArgument("template " + tmpl.name +
                                   " exceeds 16 tables");
  }
  PreparedTemplate prep;
  prep.tmpl = &tmpl;

  for (const std::string& table_name : tmpl.tables) {
    PPC_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(table_name));
    PreparedTemplate::TableInfo info;
    info.name = table_name;
    info.rows = static_cast<double>(table->row_count());
    info.width = static_cast<double>(table->RowWidthBytes());
    info.params = tmpl.ParamsOnTable(table_name);
    prep.tables.push_back(std::move(info));
  }

  for (const JoinEdge& edge : tmpl.joins) {
    PreparedTemplate::EdgeInfo info;
    info.left_table = tmpl.TableIndex(edge.left_table);
    info.right_table = tmpl.TableIndex(edge.right_table);
    if (info.left_table < 0 || info.right_table < 0) {
      return Status::InvalidArgument("join references unknown table in " +
                                     tmpl.name);
    }
    info.left_column = edge.left_column;
    info.right_column = edge.right_column;
    PPC_ASSIGN_OR_RETURN(
        const ColumnStats* lstats,
        catalog_->GetColumnStats(edge.left_table, edge.left_column));
    PPC_ASSIGN_OR_RETURN(
        const ColumnStats* rstats,
        catalog_->GetColumnStats(edge.right_table, edge.right_column));
    info.left_ndv = std::max<double>(1.0,
                                     static_cast<double>(lstats->distinct_count));
    info.right_ndv = std::max<double>(
        1.0, static_cast<double>(rstats->distinct_count));
    info.selectivity = 1.0 / std::max(info.left_ndv, info.right_ndv);
    info.left_indexed = catalog_->HasIndex(edge.left_table, edge.left_column);
    info.right_indexed =
        catalog_->HasIndex(edge.right_table, edge.right_column);
    prep.edges.push_back(std::move(info));
  }

  for (const ParamPredicate& param : tmpl.params) {
    const int t = tmpl.TableIndex(param.table);
    if (t < 0) {
      return Status::InvalidArgument("parameter references unknown table " +
                                     param.table + " in " + tmpl.name);
    }
    // Validate the column exists (and is analyzable).
    PPC_ASSIGN_OR_RETURN(const ColumnStats* stats,
                         catalog_->GetColumnStats(param.table, param.column));
    (void)stats;
    prep.param_table.push_back(t);
    prep.param_indexed.push_back(catalog_->HasIndex(param.table, param.column));
  }
  return prep;
}

Result<OptimizationResult> Optimizer::Optimize(
    const PreparedTemplate& prep,
    const std::vector<double>& selectivities) const {
  const QueryTemplate& tmpl = *prep.tmpl;
  if (selectivities.size() != tmpl.params.size()) {
    return Status::InvalidArgument(
        "selectivity vector arity mismatch for template " + tmpl.name);
  }
  const size_t n = prep.tables.size();
  const size_t num_masks = size_t{1} << n;
  std::vector<DpEntry> dp(num_masks);

  // --- Base relations: choose the best access path per table. ---
  for (size_t t = 0; t < n; ++t) {
    const auto& info = prep.tables[t];
    const double local_sel =
        prep.CombinedSelectivity(info.params, selectivities);
    const double out_rows = ClampRows(info.rows * local_sel);
    DpEntry& entry = dp[size_t{1} << t];
    entry.rows = out_rows;
    entry.width = info.width;

    // Sequential scan applying all parameters as filters.
    {
      const double cost =
          cost_model_.SeqScanCost(info.rows, info.width, info.params.size());
      entry.cost = cost;
      entry.plan = MakeSeqScan(info.name, info.params);
      entry.plan->est_rows = out_rows;
      entry.plan->est_cost = cost;
    }

    // Index scans driven by each indexed parameter predicate.
    for (int p : info.params) {
      if (!prep.param_indexed[static_cast<size_t>(p)]) continue;
      const double driving_sel =
          Clamp(selectivities[static_cast<size_t>(p)], 0.0, 1.0);
      const double cost = cost_model_.IndexScanCost(
          info.rows, info.width, driving_sel, info.params.size() - 1);
      if (cost * options_.cost_fuzz < entry.cost) {
        entry.cost = cost;
        entry.plan = MakeIndexScan(
            info.name, tmpl.params[static_cast<size_t>(p)].column,
            info.params);
        entry.plan->est_rows = out_rows;
        entry.plan->est_cost = cost;
      }
    }
  }

  if (n == 1) {
    OptimizationResult result;
    DpEntry& entry = dp[1];
    double total_cost = entry.cost;
    std::unique_ptr<PlanNode> root = std::move(entry.plan);
    if (tmpl.aggregate) {
      total_cost += cost_model_.AggregateCost(entry.rows);
      root = MakeAggregate(std::move(root));
      root->est_rows = 1.0;
      root->est_cost = total_cost;
    }
    result.estimated_cost = total_cost;
    result.estimated_rows = entry.rows;
    result.plan_id = PlanFingerprint(*root);
    result.plan = std::move(root);
    return result;
  }

  // --- DP over subsets (System-R with bushy trees). ---
  for (size_t mask = 1; mask < num_masks; ++mask) {
    // Skip singletons (handled above) and masks with < 2 tables.
    if ((mask & (mask - 1)) == 0) continue;
    DpEntry& best = dp[mask];

    // Enumerate ordered partitions (s1 = probe/outer, s2 = build/inner).
    for (size_t s1 = (mask - 1) & mask; s1 != 0; s1 = (s1 - 1) & mask) {
      const size_t s2 = mask ^ s1;
      if (s2 == 0) continue;
      // Left-deep restriction: the inner side is a single base relation.
      if (options_.left_deep_only && (s2 & (s2 - 1)) != 0) continue;
      const DpEntry& left = dp[s1];
      const DpEntry& right = dp[s2];
      if (!left.valid() || !right.valid()) continue;

      // Find connecting edges; the combined join selectivity multiplies
      // all of them (cyclic graphs apply extra edges as filters).
      double join_sel = 1.0;
      int first_edge = -1;
      for (size_t e = 0; e < prep.edges.size(); ++e) {
        const auto& edge = prep.edges[e];
        const size_t lbit = size_t{1} << edge.left_table;
        const size_t rbit = size_t{1} << edge.right_table;
        const bool crosses = ((s1 & lbit) && (s2 & rbit)) ||
                             ((s1 & rbit) && (s2 & lbit));
        if (crosses) {
          join_sel *= edge.selectivity;
          if (first_edge < 0) first_edge = static_cast<int>(e);
        }
      }
      if (first_edge < 0) continue;  // avoid Cartesian products

      const double out_rows =
          ClampRows(left.rows * right.rows * join_sel);
      const double out_width = left.width + right.width;

      auto consider = [&](JoinMethod method, double join_cost,
                          std::unique_ptr<PlanNode> rhs_plan,
                          double rhs_input_cost) {
        const double total = left.cost + rhs_input_cost + join_cost;
        if (total * options_.cost_fuzz < best.cost) {
          best.cost = total;
          best.rows = out_rows;
          best.width = out_width;
          best.plan = MakeJoin(method, first_edge, left.plan->Clone(),
                               std::move(rhs_plan));
          best.plan->est_rows = out_rows;
          best.plan->est_cost = total;
        }
      };

      // Hash join: right side builds.
      consider(JoinMethod::kHashJoin,
               cost_model_.HashJoinCost(left.rows, right.rows),
               right.plan->Clone(), right.cost);
      // Block nested loop.
      consider(JoinMethod::kBlockNestedLoop,
               cost_model_.BlockNestedLoopCost(left.rows, right.rows,
                                               right.width),
               right.plan->Clone(), right.cost);
      // Sort-merge.
      consider(JoinMethod::kSortMergeJoin,
               cost_model_.SortMergeCost(left.rows, right.rows),
               right.plan->Clone(), right.cost);

      // Index nested loop: inner must be a single base table with an index
      // on its side of a connecting join edge. The inner's base-scan cost
      // is *not* paid; probes replace it.
      if ((s2 & (s2 - 1)) == 0) {
        const int inner_t = static_cast<int>(std::countr_zero(s2));
        const auto& inner_info = prep.tables[static_cast<size_t>(inner_t)];
        for (size_t e = 0; e < prep.edges.size(); ++e) {
          const auto& edge = prep.edges[e];
          const bool inner_is_right =
              edge.right_table == inner_t &&
              (s1 & (size_t{1} << edge.left_table));
          const bool inner_is_left =
              edge.left_table == inner_t &&
              (s1 & (size_t{1} << edge.right_table));
          if (!inner_is_right && !inner_is_left) continue;
          const bool indexed =
              inner_is_right ? edge.right_indexed : edge.left_indexed;
          if (!indexed) continue;
          const std::string& probe_column =
              inner_is_right ? edge.right_column : edge.left_column;
          const double inner_ndv =
              inner_is_right ? edge.right_ndv : edge.left_ndv;
          const double matches_per_probe =
              std::max(inner_info.rows / inner_ndv, 1e-6);
          const double probe_cost = cost_model_.IndexNestedLoopCost(
              left.rows, inner_info.rows, inner_info.width,
              matches_per_probe);
          // Residual parameter predicates on the inner table are applied
          // to each probe result.
          const double residual_cpu =
              left.rows * matches_per_probe *
              cost_model_.params().cpu_operator_cost *
              static_cast<double>(inner_info.params.size());
          auto rhs = MakeIndexScan(inner_info.name, probe_column,
                                   inner_info.params);
          rhs->est_rows = matches_per_probe;
          consider(JoinMethod::kIndexNestedLoop, probe_cost + residual_cpu,
                   std::move(rhs), /*rhs_input_cost=*/0.0);
        }
      }
    }
  }

  DpEntry& final_entry = dp[num_masks - 1];
  if (!final_entry.valid()) {
    return Status::Internal("join graph of " + tmpl.name +
                            " is disconnected (Cartesian products are not "
                            "enumerated)");
  }

  OptimizationResult result;
  double total_cost = final_entry.cost;
  std::unique_ptr<PlanNode> root = std::move(final_entry.plan);
  if (tmpl.aggregate) {
    total_cost += cost_model_.AggregateCost(final_entry.rows);
    root = MakeAggregate(std::move(root));
    root->est_rows = 1.0;
    root->est_cost = total_cost;
  }
  result.estimated_cost = total_cost;
  result.estimated_rows = final_entry.rows;
  result.plan_id = PlanFingerprint(*root);
  result.plan = std::move(root);
  return result;
}

Result<OptimizationResult> Optimizer::Optimize(
    const QueryTemplate& tmpl,
    const std::vector<double>& selectivities) const {
  PPC_ASSIGN_OR_RETURN(PreparedTemplate prep, Prepare(tmpl));
  return Optimize(prep, selectivities);
}

}  // namespace ppc
