#ifndef PPC_OPTIMIZER_ROBUST_PLAN_H_
#define PPC_OPTIMIZER_ROBUST_PLAN_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "optimizer/optimizer.h"

namespace ppc {

/// Output of robust plan selection.
struct RobustPlanResult {
  std::unique_ptr<PlanNode> plan;
  PlanId plan_id = kNullPlanId;
  /// Mean cost of the selected plan over the sample points.
  double average_cost = 0.0;
  /// max over samples of cost(selected) / cost(optimal) — the robustness
  /// guarantee actually achieved.
  double worst_case_suboptimality = 1.0;
  /// Optimizer invocations spent selecting (the overhead the paper's
  /// Sec. VI-A says is hard to justify for plan caching).
  size_t optimizer_calls = 0;
  /// Distinct candidate plans considered.
  size_t candidates = 0;
};

/// Robust query processing baseline (paper Sec. VI-A): instead of caching
/// the least-specific-cost plan or predicting per instance, select the
/// single plan with minimum *average* cost over the parameter
/// distribution, represented by `sample_points`.
///
/// Procedure: optimize at every sample point to harvest the candidate plan
/// set, replay every candidate at every sample point with the cost model,
/// and return the candidate minimizing mean cost. O(|samples|) optimizer
/// calls plus O(candidates x samples) replays — the eager pre-processing
/// cost the PPC framework avoids.
Result<RobustPlanResult> SelectRobustPlan(
    const Optimizer& optimizer, const PreparedTemplate& prepared,
    const std::vector<std::vector<double>>& sample_points);

}  // namespace ppc

#endif  // PPC_OPTIMIZER_ROBUST_PLAN_H_
