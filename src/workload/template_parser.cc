#include "workload/template_parser.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace ppc {

namespace {

/// A minimal recursive-descent tokenizer/parser for the template dialect.
class Parser {
 public:
  explicit Parser(const std::string& sql) : sql_(sql) {}

  Result<QueryTemplate> Parse(const Catalog* catalog, std::string name) {
    QueryTemplate tmpl;
    tmpl.name = std::move(name);

    PPC_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    SkipSpace();
    if (ConsumeKeyword("COUNT")) {
      PPC_RETURN_NOT_OK(ExpectLiteral("("));
      PPC_RETURN_NOT_OK(ExpectLiteral("*"));
      PPC_RETURN_NOT_OK(ExpectLiteral(")"));
      tmpl.aggregate = true;
    } else if (ConsumeLiteral("*")) {
      tmpl.aggregate = false;
    } else {
      return Error("expected COUNT(*) or * in select list");
    }

    PPC_RETURN_NOT_OK(ExpectKeyword("FROM"));
    for (;;) {
      PPC_ASSIGN_OR_RETURN(std::string table, ParseIdentifier());
      tmpl.tables.push_back(std::move(table));
      SkipSpace();
      if (!ConsumeLiteral(",")) break;
    }

    SkipSpace();
    if (!AtEnd()) {
      PPC_RETURN_NOT_OK(ExpectKeyword("WHERE"));
      for (;;) {
        PPC_RETURN_NOT_OK(ParseConjunct(&tmpl));
        SkipSpace();
        if (AtEnd()) break;
        PPC_RETURN_NOT_OK(ExpectKeyword("AND"));
      }
    }

    PPC_RETURN_NOT_OK(Validate(tmpl, catalog));
    return tmpl;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("template parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= sql_.size();
  }

  void SkipSpace() {
    while (pos_ < sql_.size() &&
           std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
  }

  /// Case-insensitively consumes `word` if it appears next (no word-char
  /// may follow, so "ANDx" does not match AND).
  bool ConsumeKeyword(const std::string& word) {
    SkipSpace();
    if (pos_ + word.size() > sql_.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(sql_[pos_ + i])) !=
          std::toupper(static_cast<unsigned char>(word[i]))) {
        return false;
      }
    }
    const size_t after = pos_ + word.size();
    if (after < sql_.size() &&
        (std::isalnum(static_cast<unsigned char>(sql_[after])) ||
         sql_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  Status ExpectKeyword(const std::string& word) {
    if (!ConsumeKeyword(word)) return Error("expected " + word);
    return Status::OK();
  }

  /// Consumes a literal token (punctuation or exact text), skipping
  /// leading whitespace.
  bool ConsumeLiteral(const std::string& text) {
    SkipSpace();
    if (sql_.compare(pos_, text.size(), text) == 0) {
      // For alphabetic literals require a word boundary.
      if (std::isalpha(static_cast<unsigned char>(text[0]))) {
        const size_t after = pos_ + text.size();
        if (after < sql_.size() &&
            (std::isalnum(static_cast<unsigned char>(sql_[after])) ||
             sql_[after] == '_')) {
          return false;
        }
      }
      pos_ += text.size();
      return true;
    }
    return false;
  }

  Status ExpectLiteral(const std::string& text) {
    if (!ConsumeLiteral(text)) return Error("expected '" + text + "'");
    return Status::OK();
  }

  Result<std::string> ParseIdentifier() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < sql_.size() &&
           (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected identifier");
    return sql_.substr(start, pos_ - start);
  }

  /// table.column
  Result<std::pair<std::string, std::string>> ParseColumnRef() {
    PPC_ASSIGN_OR_RETURN(std::string table, ParseIdentifier());
    PPC_RETURN_NOT_OK(ExpectLiteral("."));
    PPC_ASSIGN_OR_RETURN(std::string column, ParseIdentifier());
    return std::make_pair(std::move(table), std::move(column));
  }

  Status ParseConjunct(QueryTemplate* tmpl) {
    PPC_ASSIGN_OR_RETURN(auto left, ParseColumnRef());
    SkipSpace();
    PredicateOp op = PredicateOp::kLeq;
    bool is_param = false;
    if (ConsumeLiteral("<=")) {
      is_param = true;
      op = PredicateOp::kLeq;
    } else if (ConsumeLiteral(">=")) {
      is_param = true;
      op = PredicateOp::kGeq;
    }
    if (is_param) {
      SkipSpace();
      if (!ConsumeLiteral("$")) return Error("expected $k parameter");
      PPC_ASSIGN_OR_RETURN(std::string number, ParseIdentifier());
      size_t index = 0;
      for (char c : number) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          return Error("parameter index must be numeric");
        }
        index = index * 10 + static_cast<size_t>(c - '0');
      }
      if (index != tmpl->params.size()) {
        return Error("parameters must be numbered densely in order ($" +
                     std::to_string(tmpl->params.size()) + " expected, $" +
                     number + " found)");
      }
      tmpl->params.push_back({left.first, left.second, op});
      return Status::OK();
    }
    if (ConsumeLiteral("=")) {
      PPC_ASSIGN_OR_RETURN(auto right, ParseColumnRef());
      tmpl->joins.push_back(
          {left.first, left.second, right.first, right.second});
      return Status::OK();
    }
    return Error("expected '=' (join) or '<=' (parameter) after column");
  }

  Status Validate(const QueryTemplate& tmpl, const Catalog* catalog) const {
    auto known_table = [&](const std::string& table) {
      return tmpl.TableIndex(table) >= 0;
    };
    for (const JoinEdge& join : tmpl.joins) {
      if (!known_table(join.left_table) || !known_table(join.right_table)) {
        return Status::InvalidArgument(
            "join references a table absent from FROM");
      }
    }
    for (const ParamPredicate& param : tmpl.params) {
      if (!known_table(param.table)) {
        return Status::InvalidArgument(
            "parameter references a table absent from FROM: " + param.table);
      }
    }
    if (catalog != nullptr) {
      for (const std::string& table : tmpl.tables) {
        PPC_ASSIGN_OR_RETURN(const Table* t, catalog->GetTable(table));
        (void)t;
      }
      auto check_column = [&](const std::string& table,
                              const std::string& column) -> Status {
        PPC_ASSIGN_OR_RETURN(const Table* t, catalog->GetTable(table));
        if (t->def().ColumnIndex(column) < 0) {
          return Status::NotFound("column " + table + "." + column);
        }
        return Status::OK();
      };
      for (const JoinEdge& join : tmpl.joins) {
        PPC_RETURN_NOT_OK(check_column(join.left_table, join.left_column));
        PPC_RETURN_NOT_OK(check_column(join.right_table, join.right_column));
      }
      for (const ParamPredicate& param : tmpl.params) {
        PPC_RETURN_NOT_OK(check_column(param.table, param.column));
      }
    }
    return Status::OK();
  }

  const std::string& sql_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryTemplate> ParseQueryTemplate(const std::string& sql,
                                         const Catalog* catalog,
                                         std::string name) {
  Parser parser(sql);
  return parser.Parse(catalog, std::move(name));
}

}  // namespace ppc
