#include "workload/workload_history.h"

#include <algorithm>

namespace ppc {

std::vector<const WorkloadEntry*> WorkloadHistory::ForTemplate(
    const std::string& template_name) const {
  std::vector<const WorkloadEntry*> out;
  for (const WorkloadEntry& entry : entries_) {
    if (entry.template_name == template_name) out.push_back(&entry);
  }
  return out;
}

std::vector<PlanId> WorkloadHistory::DistinctPlans(
    const std::string& template_name) const {
  std::vector<PlanId> plans;
  for (const WorkloadEntry& entry : entries_) {
    if (entry.template_name != template_name) continue;
    if (std::find(plans.begin(), plans.end(), entry.plan_id) == plans.end()) {
      plans.push_back(entry.plan_id);
    }
  }
  return plans;
}

}  // namespace ppc
