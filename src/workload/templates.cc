#include "workload/templates.h"

#include "common/macros.h"

namespace ppc {

std::vector<QueryTemplate> EvaluationTemplates() {
  std::vector<QueryTemplate> templates;

  // Q0: lineitem x part, degree 2.
  templates.push_back(QueryTemplate{
      "Q0",
      {"lineitem", "part"},
      {{"lineitem", "l_partkey", "part", "p_partkey"}},
      {{"lineitem", "l_partkey"}, {"part", "p_retailprice"}},
      /*aggregate=*/true});

  // Q1: supplier x lineitem, degree 2 — the paper's running example with
  // predicates on s_date and l_partkey (Fig. 2).
  templates.push_back(QueryTemplate{
      "Q1",
      {"supplier", "lineitem"},
      {{"supplier", "s_suppkey", "lineitem", "l_suppkey"}},
      {{"supplier", "s_date"}, {"lineitem", "l_partkey"}},
      /*aggregate=*/true});

  // Q2: orders x lineitem, degree 2.
  templates.push_back(QueryTemplate{
      "Q2",
      {"orders", "lineitem"},
      {{"orders", "o_orderkey", "lineitem", "l_orderkey"}},
      {{"orders", "o_date"}, {"lineitem", "l_quantity"}},
      /*aggregate=*/true});

  // Q3: customer x orders x lineitem, degree 3.
  templates.push_back(QueryTemplate{
      "Q3",
      {"customer", "orders", "lineitem"},
      {{"customer", "c_custkey", "orders", "o_custkey"},
       {"orders", "o_orderkey", "lineitem", "l_orderkey"}},
      {{"customer", "c_acctbal"},
       {"orders", "o_date"},
       {"lineitem", "l_date"}},
      /*aggregate=*/true});

  // Q4: part x partsupp x supplier, degree 3.
  templates.push_back(QueryTemplate{
      "Q4",
      {"part", "partsupp", "supplier"},
      {{"part", "p_partkey", "partsupp", "ps_partkey"},
       {"partsupp", "ps_suppkey", "supplier", "s_suppkey"}},
      {{"part", "p_size"},
       {"partsupp", "ps_supplycost"},
       {"supplier", "s_acctbal"}},
      /*aggregate=*/true});

  // Q5: customer x orders x lineitem x supplier, degree 4.
  templates.push_back(QueryTemplate{
      "Q5",
      {"customer", "orders", "lineitem", "supplier"},
      {{"customer", "c_custkey", "orders", "o_custkey"},
       {"orders", "o_orderkey", "lineitem", "l_orderkey"},
       {"lineitem", "l_suppkey", "supplier", "s_suppkey"}},
      {{"customer", "c_date"},
       {"orders", "o_totalprice"},
       {"lineitem", "l_date"},
       {"supplier", "s_acctbal"}},
      /*aggregate=*/true});

  // Q6: part x partsupp x lineitem x orders, degree 4.
  templates.push_back(QueryTemplate{
      "Q6",
      {"part", "partsupp", "lineitem", "orders"},
      {{"part", "p_partkey", "partsupp", "ps_partkey"},
       {"partsupp", "ps_partkey", "lineitem", "l_partkey"},
       {"lineitem", "l_orderkey", "orders", "o_orderkey"}},
      {{"part", "p_retailprice"},
       {"partsupp", "ps_availqty"},
       {"lineitem", "l_quantity"},
       {"orders", "o_date"}},
      /*aggregate=*/true});

  // Q7: customer x orders x lineitem x part x supplier, degree 5.
  templates.push_back(QueryTemplate{
      "Q7",
      {"customer", "orders", "lineitem", "part", "supplier"},
      {{"customer", "c_custkey", "orders", "o_custkey"},
       {"orders", "o_orderkey", "lineitem", "l_orderkey"},
       {"lineitem", "l_partkey", "part", "p_partkey"},
       {"lineitem", "l_suppkey", "supplier", "s_suppkey"}},
      {{"customer", "c_acctbal"},
       {"orders", "o_date"},
       {"lineitem", "l_date"},
       {"part", "p_size"},
       {"supplier", "s_date"}},
      /*aggregate=*/true});

  // Q8: six tables, degree 6.
  templates.push_back(QueryTemplate{
      "Q8",
      {"customer", "orders", "lineitem", "part", "supplier", "partsupp"},
      {{"customer", "c_custkey", "orders", "o_custkey"},
       {"orders", "o_orderkey", "lineitem", "l_orderkey"},
       {"lineitem", "l_partkey", "part", "p_partkey"},
       {"lineitem", "l_suppkey", "supplier", "s_suppkey"},
       {"part", "p_partkey", "partsupp", "ps_partkey"}},
      {{"customer", "c_acctbal"},
       {"orders", "o_date"},
       {"lineitem", "l_date"},
       {"part", "p_size"},
       {"supplier", "s_date"},
       {"partsupp", "ps_supplycost"}},
      /*aggregate=*/true});

  return templates;
}

QueryTemplate MixedPredicateTemplate() {
  return QueryTemplate{
      "QMixed",
      {"orders", "lineitem"},
      {{"orders", "o_orderkey", "lineitem", "l_orderkey"}},
      {{"orders", "o_date", PredicateOp::kGeq},
       {"lineitem", "l_quantity", PredicateOp::kLeq}},
      /*aggregate=*/true};
}

QueryTemplate EvaluationTemplate(const std::string& name) {
  for (QueryTemplate& tmpl : EvaluationTemplates()) {
    if (tmpl.name == name) return std::move(tmpl);
  }
  PPC_CHECK_MSG(false, ("unknown evaluation template " + name).c_str());
  return QueryTemplate{};
}

}  // namespace ppc
