#ifndef PPC_WORKLOAD_PLAN_DIAGRAM_H_
#define PPC_WORKLOAD_PLAN_DIAGRAM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "plan/fingerprint.h"

namespace ppc {

/// Complexity metrics of a plan diagram, in the spirit of the Picasso
/// analyses (Reddy & Haritsa) the paper cites to argue that plan optimality
/// regions are "very complex, with plans spanning multiple non-contiguous
/// regions" — the reason centroid clustering fails and density clustering
/// is needed.
struct PlanDiagramStats {
  size_t probes = 0;
  size_t distinct_plans = 0;
  /// Area fraction of the single largest optimality region.
  double largest_region_fraction = 0.0;
  /// Gini coefficient of region areas in [0,1]: 0 = all plans cover equal
  /// area, ->1 = one plan dominates with a long tail of slivers.
  double gini = 0.0;
  /// Shannon entropy of the plan distribution, in bits.
  double entropy_bits = 0.0;
  /// Fraction of random point pairs at distance `neighbor_distance` whose
  /// optimal plans differ — the measure of boundary density (and the
  /// complement of the paper's Assumption-1 probability).
  double boundary_fraction = 0.0;

  /// Plans needed to cover `fraction` of the plan space, smallest set
  /// first (Picasso's "plan cardinality reduction" viewpoint).
  size_t PlansCoveringFraction(double fraction) const;

  /// Probe counts per plan, descending.
  std::vector<size_t> region_sizes;
};

/// Probes `plan_at` (any oracle mapping a point in [0,1]^dims to a plan id)
/// at `probes` uniform points plus `probes` neighbor pairs at distance
/// `neighbor_distance`, and computes the diagram metrics. Deterministic
/// for a given seed.
PlanDiagramStats AnalyzePlanSpace(
    const std::function<PlanId(const std::vector<double>&)>& plan_at,
    int dims, size_t probes, double neighbor_distance, uint64_t seed);

}  // namespace ppc

#endif  // PPC_WORKLOAD_PLAN_DIAGRAM_H_
