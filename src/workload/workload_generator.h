#ifndef PPC_WORKLOAD_WORKLOAD_GENERATOR_H_
#define PPC_WORKLOAD_WORKLOAD_GENERATOR_H_

#include <vector>

#include "common/rng.h"

namespace ppc {

/// Generators for the two experimental workflows of paper Sec. V: the
/// *offline* workflow samples plan-space points uniformly; the *online*
/// workflow ("random trajectories") moves a cursor along random
/// trajectories through the plan space and emits points Gaussian-scattered
/// around it.

/// Uniformly samples `count` points from [0,1]^dimensions.
std::vector<std::vector<double>> UniformPlanSpaceSample(int dimensions,
                                                        size_t count,
                                                        Rng* rng);

/// Configuration of the random-trajectories workload (Sec. V intro: "a
/// cursor is moved along 10 independent, randomly produced trajectories
/// over the plan space. The test points are selected such that their
/// distance to the cursor follows a Gaussian distribution with mu = 0 and
/// sigma = r_d").
struct TrajectoryConfig {
  int dimensions = 2;
  size_t total_points = 1000;
  size_t trajectory_count = 10;
  /// Gaussian scatter radius r_d, enumerated over {0.01, 0.02, 0.04, 0.08}
  /// in the paper's experiments.
  double scatter = 0.01;
  /// Cursor step length per emitted point.
  double step = 0.02;
};

/// Generates a random-trajectories workload: `total_points` plan-space
/// points in [0,1]^dimensions distributed over `trajectory_count`
/// independent random walks.
std::vector<std::vector<double>> RandomTrajectoriesWorkload(
    const TrajectoryConfig& config, Rng* rng);

}  // namespace ppc

#endif  // PPC_WORKLOAD_WORKLOAD_GENERATOR_H_
