#ifndef PPC_WORKLOAD_TEMPLATES_H_
#define PPC_WORKLOAD_TEMPLATES_H_

#include <vector>

#include "workload/query_template.h"

namespace ppc {

/// The nine evaluation query templates Q0..Q8 over the modified TPC-H
/// schema (our analogue of the paper's Table III). Parameter degrees range
/// from 2 to 6, matching the paper's experimental setup. All parameterized
/// predicates are upper-bound range predicates `column <= $i` whose
/// selectivities span the plan space.
std::vector<QueryTemplate> EvaluationTemplates();

/// Returns the template named `name` ("Q0".."Q8"); aborts on unknown names
/// (evaluation code passes compile-time-known names).
QueryTemplate EvaluationTemplate(const std::string& name);

/// A template mixing predicate directions (`o_date >= $0` selects recent
/// orders, `l_quantity <= $1` small lineitems) — exercises the kGeq path
/// through normalization, optimization and execution.
QueryTemplate MixedPredicateTemplate();

}  // namespace ppc

#endif  // PPC_WORKLOAD_TEMPLATES_H_
