#include "workload/workload_generator.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_utils.h"

namespace ppc {

std::vector<std::vector<double>> UniformPlanSpaceSample(int dimensions,
                                                        size_t count,
                                                        Rng* rng) {
  PPC_CHECK(dimensions >= 1 && rng != nullptr);
  std::vector<std::vector<double>> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> point(static_cast<size_t>(dimensions));
    for (double& x : point) x = rng->Uniform();
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<std::vector<double>> RandomTrajectoriesWorkload(
    const TrajectoryConfig& config, Rng* rng) {
  PPC_CHECK(config.dimensions >= 1 && config.trajectory_count >= 1 &&
            rng != nullptr);
  const size_t dims = static_cast<size_t>(config.dimensions);
  std::vector<std::vector<double>> points;
  points.reserve(config.total_points);

  const size_t per_trajectory =
      (config.total_points + config.trajectory_count - 1) /
      config.trajectory_count;

  for (size_t t = 0;
       t < config.trajectory_count && points.size() < config.total_points;
       ++t) {
    // Random start and a random (renormalized) heading.
    std::vector<double> cursor(dims);
    std::vector<double> heading(dims);
    for (double& x : cursor) x = rng->Uniform();
    double norm = 0.0;
    for (double& h : heading) {
      h = rng->Gaussian();
      norm += h * h;
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    for (double& h : heading) h /= norm;

    for (size_t i = 0;
         i < per_trajectory && points.size() < config.total_points; ++i) {
      // Emit a point Gaussian-scattered around the cursor.
      std::vector<double> point(dims);
      for (size_t d = 0; d < dims; ++d) {
        point[d] = Clamp(cursor[d] + rng->Gaussian(0.0, config.scatter),
                         0.0, 1.0);
      }
      points.push_back(std::move(point));

      // Advance the cursor; reflect off the plan-space boundary and jitter
      // the heading slightly so trajectories curve.
      for (size_t d = 0; d < dims; ++d) {
        cursor[d] += heading[d] * config.step;
        if (cursor[d] < 0.0) {
          cursor[d] = -cursor[d];
          heading[d] = -heading[d];
        } else if (cursor[d] > 1.0) {
          cursor[d] = 2.0 - cursor[d];
          heading[d] = -heading[d];
        }
      }
      double hnorm = 0.0;
      for (double& h : heading) {
        h += rng->Gaussian(0.0, 0.1);
        hnorm += h * h;
      }
      hnorm = std::sqrt(std::max(hnorm, 1e-12));
      for (double& h : heading) h /= hnorm;
    }
  }
  return points;
}

}  // namespace ppc
