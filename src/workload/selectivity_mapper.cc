#include "workload/selectivity_mapper.h"

#include "common/math_utils.h"

namespace ppc {

SelectivityMapper::SelectivityMapper(const Catalog* catalog,
                                     const QueryTemplate* tmpl)
    : catalog_(catalog), tmpl_(tmpl) {
  PPC_CHECK(catalog != nullptr && tmpl != nullptr);
}

Status SelectivityMapper::Validate() const {
  for (const ParamPredicate& param : tmpl_->params) {
    PPC_ASSIGN_OR_RETURN(const ColumnStats* stats,
                         catalog_->GetColumnStats(param.table, param.column));
    if (stats->row_count == 0) {
      return Status::InvalidArgument("no statistics rows for " + param.table +
                                     "." + param.column);
    }
  }
  return Status::OK();
}

Result<std::vector<double>> SelectivityMapper::ToPlanSpacePoint(
    const QueryInstance& instance) const {
  if (instance.param_values.size() != tmpl_->params.size()) {
    return Status::InvalidArgument("instance arity mismatch for " +
                                   tmpl_->name);
  }
  std::vector<double> point;
  point.reserve(tmpl_->params.size());
  for (size_t i = 0; i < tmpl_->params.size(); ++i) {
    const ParamPredicate& param = tmpl_->params[i];
    PPC_ASSIGN_OR_RETURN(const ColumnStats* stats,
                         catalog_->GetColumnStats(param.table, param.column));
    const double leq = stats->SelectivityLeq(instance.param_values[i]);
    point.push_back(param.op == PredicateOp::kLeq
                        ? leq
                        : Clamp(1.0 - leq, 0.0, 1.0));
  }
  return point;
}

Result<QueryInstance> SelectivityMapper::ToInstance(
    const std::vector<double>& plan_space_point) const {
  if (plan_space_point.size() != tmpl_->params.size()) {
    return Status::InvalidArgument("plan-space point arity mismatch for " +
                                   tmpl_->name);
  }
  QueryInstance instance;
  instance.template_name = tmpl_->name;
  instance.param_values.reserve(tmpl_->params.size());
  for (size_t i = 0; i < tmpl_->params.size(); ++i) {
    const ParamPredicate& param = tmpl_->params[i];
    PPC_ASSIGN_OR_RETURN(const ColumnStats* stats,
                         catalog_->GetColumnStats(param.table, param.column));
    const double s = Clamp(plan_space_point[i], 0.0, 1.0);
    // For `col >= v`, selectivity s corresponds to the (1-s) quantile.
    instance.param_values.push_back(stats->ValueAtSelectivity(
        param.op == PredicateOp::kLeq ? s : 1.0 - s));
  }
  return instance;
}

}  // namespace ppc
