#include "workload/query_template.h"

#include <sstream>

namespace ppc {

const char* PredicateOpSymbol(PredicateOp op) {
  switch (op) {
    case PredicateOp::kLeq:
      return "<=";
    case PredicateOp::kGeq:
      return ">=";
  }
  return "?";
}

int QueryTemplate::TableIndex(const std::string& table) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i] == table) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> QueryTemplate::ParamsOnTable(const std::string& table) const {
  std::vector<int> out;
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].table == table) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::string QueryTemplate::ToSql() const {
  std::ostringstream os;
  os << "SELECT " << (aggregate ? "COUNT(*)" : "*") << " FROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i) os << ", ";
    os << tables[i];
  }
  os << " WHERE ";
  bool first = true;
  for (const JoinEdge& j : joins) {
    if (!first) os << " AND ";
    first = false;
    os << j.left_table << "." << j.left_column << " = " << j.right_table
       << "." << j.right_column;
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!first) os << " AND ";
    first = false;
    os << params[i].table << "." << params[i].column << " "
       << PredicateOpSymbol(params[i].op) << " $" << i;
  }
  return os.str();
}

}  // namespace ppc
