#ifndef PPC_WORKLOAD_SELECTIVITY_MAPPER_H_
#define PPC_WORKLOAD_SELECTIVITY_MAPPER_H_

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "workload/query_template.h"

namespace ppc {

/// The paper's normalization pre-step f : query instance -> [0,1]^r
/// (Sec. II-A): maps a query instance's explicit parameter values to the
/// selectivities of its parameterized predicates, "in the same way that the
/// query optimizer makes its selectivity estimations" — i.e. through the
/// catalog's column histograms.
///
/// Also provides the inverse (selectivity -> parameter value), used by the
/// workload generators to produce instances at chosen plan-space points.
class SelectivityMapper {
 public:
  /// Borrows both; the catalog and template must outlive the mapper.
  SelectivityMapper(const Catalog* catalog, const QueryTemplate* tmpl);

  /// Validates that every parameterized column has statistics.
  Status Validate() const;

  /// f(instance): one selectivity per template parameter, each in [0, 1].
  Result<std::vector<double>> ToPlanSpacePoint(
      const QueryInstance& instance) const;

  /// f^{-1}: parameter values realizing the given plan-space point
  /// (each coordinate clamped to [0, 1]).
  Result<QueryInstance> ToInstance(
      const std::vector<double>& plan_space_point) const;

  const QueryTemplate& tmpl() const { return *tmpl_; }

 private:
  const Catalog* catalog_;
  const QueryTemplate* tmpl_;
};

}  // namespace ppc

#endif  // PPC_WORKLOAD_SELECTIVITY_MAPPER_H_
