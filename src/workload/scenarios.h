#ifndef PPC_WORKLOAD_SCENARIOS_H_
#define PPC_WORKLOAD_SCENARIOS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppc {

/// The workload zoo (docs/WORKLOADS.md): named, seeded scenario
/// generators producing deterministic open-loop event streams. Where
/// workload_generator.h reproduces the paper's two experimental
/// workflows (uniform sampling, random trajectories), the scenarios
/// here model the traffic shapes a production plan-prediction service
/// actually meets — skewed multi-tenant popularity, diurnal load with
/// flash crowds, correlated (non-axis-aligned) parameter distributions,
/// and scheduled adversarial drift — each one aimed at a specific
/// serving-layer failure surface (the shed ladder, the LSH grid, the
/// retune path). Every scenario is a pure function of its seed: the
/// same ScenarioConfig yields a byte-identical event stream, which is
/// what makes the zoo benchmarks and the ctest smokes reproducible.

/// One workload event: which template the query instance targets, where
/// its predicate selectivities land in the plan space, and when it
/// arrives on the (scenario-relative) open-loop clock.
struct ScenarioEvent {
  /// Index into ScenarioConfig::templates.
  uint32_t template_index = 0;
  /// Plan-space point in [0,1]^dims for that template.
  std::vector<double> point;
  /// Arrival offset in seconds since the stream began. Monotonically
  /// non-decreasing; an open-loop driver paces sends by this clock
  /// (possibly rescaled), a closed-loop driver may ignore it.
  double arrival_seconds = 0.0;
};

/// One template slot of a scenario: the registered template's name and
/// its plan-space dimensionality (QueryTemplate::ParameterDegree()).
struct ScenarioTemplate {
  std::string name;
  int dimensions = 2;
};

/// Configuration shared by every scenario plus one knob block per named
/// scenario (only the block matching the scenario's name is read).
/// Defaults are the documented reference values of docs/WORKLOADS.md;
/// the seed fully determines the stream.
struct ScenarioConfig {
  /// Templates the scenario emits events for. Must be non-empty;
  /// adversarial_drift uses only templates[0] (drift is a per-template
  /// signal — spreading it across templates dilutes every window).
  std::vector<ScenarioTemplate> templates;
  uint64_t seed = 0x5ca1ab1e;
  /// Base arrival rate of the open-loop clock (events per second of
  /// scenario time). diurnal_flash modulates it; the others use it as
  /// the constant rate of a homogeneous Poisson process.
  double events_per_second = 1000.0;

  /// zipf_tenants: `tenant_count` tenants whose request shares follow a
  /// Zipf law with the given exponent (tenant of rank k has weight
  /// (k+1)^-exponent). Tenant k issues template k % |templates| at
  /// points Gaussian-scattered (stddev `cluster_stddev`, clamped to
  /// [0,1]) around a per-tenant cluster center drawn once from the
  /// seed. Stresses: per-template popularity skew — cache pressure and
  /// per-template learning rates differ by orders of magnitude.
  struct ZipfTenantsOptions {
    size_t tenant_count = 16;
    double exponent = 1.1;
    double cluster_stddev = 0.02;
  } zipf_tenants;

  /// diurnal_flash: a non-homogeneous Poisson process whose rate is
  /// events_per_second * (1 + amplitude * sin(2*pi*t/period)), with
  /// flash crowds — windows of `flash_duration_seconds` starting at
  /// `first_flash_at_seconds` and every `flash_every_seconds` after —
  /// multiplying the rate by `flash_multiplier`. Sampled exactly by
  /// thinning against the peak rate. Templates round-robin; points
  /// cluster (stddev `cluster_stddev`) around per-template centers
  /// drawn from the seed. Stresses: the EWMA shed ladder and BUSY
  /// backpressure (DESIGN.md §14) under realistic load curves.
  struct DiurnalFlashOptions {
    double period_seconds = 2.0;
    /// Relative swing of the sinusoid, in [0, 1).
    double amplitude = 0.6;
    double first_flash_at_seconds = 1.0;
    double flash_every_seconds = 2.0;
    double flash_duration_seconds = 0.2;
    double flash_multiplier = 25.0;
    double cluster_stddev = 0.02;
  } diurnal_flash;

  /// correlated_predicates: per template, `ridge_count` "ridges" — an
  /// anchor point and a random non-axis-aligned unit direction, both
  /// drawn from the seed. Each event picks a ridge uniformly and emits
  /// anchor + t*direction + per-dimension Gaussian noise with
  /// t ~ N(0, major_stddev) and noise ~ N(0, minor_stddev): a
  /// distribution whose principal axes do not line up with the
  /// coordinate grid. Stresses: the grid-partitioned LSH histograms —
  /// axis-aligned buckets smear a diagonal ridge across many cells, the
  /// hard case the randomized transforms exist to mitigate.
  struct CorrelatedPredicatesOptions {
    size_t ridge_count = 2;
    /// Spread along the ridge direction.
    double major_stddev = 0.18;
    /// Isotropic thickness across it.
    double minor_stddev = 0.012;
  } correlated_predicates;

  /// adversarial_drift: a scheduled sequence of concentration phases.
  /// Phase p emits `events` points uniform in the hypercube
  /// [center - half_width, center + half_width]^dims (clamped to
  /// [0,1]); when the schedule is exhausted the last phase repeats
  /// forever. An empty schedule gets the default 3-phase shape of
  /// bench_workload_zoo: a uniform background, a "home" box, then a
  /// mid-run jump into a different box — the stats/concentration jump
  /// that feeds the RetuneController (DESIGN.md §17). Stresses: drift
  /// detection and the retune trigger/refit/handoff path.
  struct AdversarialDriftOptions {
    /// One concentration regime of the schedule.
    struct Phase {
      size_t events = 0;
      /// Box center, same coordinate on every dimension.
      double center = 0.5;
      double half_width = 0.05;
    };
    std::vector<Phase> phases;
  } adversarial_drift;
};

/// A deterministic, seeded stream of workload events. Implementations
/// are pure functions of their ScenarioConfig: two generators built
/// from equal configs yield byte-identical streams. Next() is cheap
/// (no allocation beyond the returned point) and never fails; streams
/// are unbounded — the caller decides how many events to draw.
class ScenarioGenerator {
 public:
  virtual ~ScenarioGenerator() = default;

  /// The scenario's registered name (one of ScenarioNames()).
  virtual const std::string& name() const = 0;

  /// The config the generator was built from.
  virtual const ScenarioConfig& config() const = 0;

  /// Draws the next event. Arrival times are monotone non-decreasing;
  /// points are clamped to [0,1] per coordinate.
  virtual ScenarioEvent Next() = 0;
};

/// Names of every registered scenario, in documentation order:
/// zipf_tenants, diurnal_flash, correlated_predicates, adversarial_drift.
const std::vector<std::string>& ScenarioNames();

/// Builds the named scenario from `config`. InvalidArgument for an
/// unknown name, an empty template list, a template with dimensions
/// < 1, or a non-positive events_per_second.
Result<std::unique_ptr<ScenarioGenerator>> MakeScenario(
    const std::string& name, const ScenarioConfig& config);

/// Draws `count` events from `generator` (convenience for benches and
/// determinism checks).
std::vector<ScenarioEvent> GenerateEvents(ScenarioGenerator* generator,
                                          size_t count);

}  // namespace ppc

#endif  // PPC_WORKLOAD_SCENARIOS_H_
