#ifndef PPC_WORKLOAD_QUERY_TEMPLATE_H_
#define PPC_WORKLOAD_QUERY_TEMPLATE_H_

#include <string>
#include <vector>

namespace ppc {

/// Direction of a parameterized range predicate.
enum class PredicateOp {
  kLeq,  // column <= $k
  kGeq,  // column >= $k
};

const char* PredicateOpSymbol(PredicateOp op);

/// A parameterized range predicate `table.column <= ?` (or `>= ?`). Each
/// such predicate contributes one optimizer parameter (its selectivity) and
/// therefore one plan-space dimension (paper Sec. II: explicit template
/// parameters). The plan-space coordinate is always the predicate's
/// *selectivity* in [0,1], regardless of direction.
struct ParamPredicate {
  std::string table;
  std::string column;
  PredicateOp op = PredicateOp::kLeq;
};

/// An equi-join edge `left_table.left_column = right_table.right_column`.
struct JoinEdge {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
};

/// A SQL query template: joined tables, join predicates, and parameterized
/// range predicates (paper Def. 1 context). The parameter degree is
/// `params.size()`, i.e. the dimensionality r of the plan space.
struct QueryTemplate {
  std::string name;
  std::vector<std::string> tables;
  std::vector<JoinEdge> joins;
  std::vector<ParamPredicate> params;
  /// Whether the query has a final aggregation (count/sum) on top.
  bool aggregate = true;

  /// Parameter degree r (number of plan-space dimensions).
  int ParameterDegree() const { return static_cast<int>(params.size()); }

  /// Index of `table` in `tables`, or -1.
  int TableIndex(const std::string& table) const;

  /// Indices of parameters applying to `table`, in declaration order.
  std::vector<int> ParamsOnTable(const std::string& table) const;

  /// SQL-ish rendering for documentation and examples.
  std::string ToSql() const;
};

/// An instantiation of a query template: one concrete value per explicit
/// parameter (paper Def. 1). Values are in the column's native domain.
struct QueryInstance {
  std::string template_name;
  std::vector<double> param_values;
};

}  // namespace ppc

#endif  // PPC_WORKLOAD_QUERY_TEMPLATE_H_
