#ifndef PPC_WORKLOAD_WORKLOAD_HISTORY_H_
#define PPC_WORKLOAD_WORKLOAD_HISTORY_H_

#include <string>
#include <vector>

#include "plan/fingerprint.h"

namespace ppc {

/// One executed query in the workload history (paper Def. 3: a tuple from
/// Q x Phi x P x R+ — template, instance, plan, execution cost). We record
/// the plan-space point alongside the raw instance values since every
/// consumer works in plan-space coordinates.
struct WorkloadEntry {
  std::string template_name;
  std::vector<double> param_values;
  std::vector<double> plan_space_point;
  PlanId plan_id = kNullPlanId;
  double execution_cost = 0.0;
};

/// An append-only record of executed query instances, their chosen plans
/// and execution costs (paper Def. 3).
class WorkloadHistory {
 public:
  void Append(WorkloadEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<WorkloadEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entries belonging to one query template, in execution order.
  std::vector<const WorkloadEntry*> ForTemplate(
      const std::string& template_name) const;

  /// Distinct plan ids observed for one template.
  std::vector<PlanId> DistinctPlans(const std::string& template_name) const;

 private:
  std::vector<WorkloadEntry> entries_;
};

}  // namespace ppc

#endif  // PPC_WORKLOAD_WORKLOAD_HISTORY_H_
