#include "workload/plan_diagram.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/math_utils.h"
#include "common/rng.h"

namespace ppc {

size_t PlanDiagramStats::PlansCoveringFraction(double fraction) const {
  fraction = Clamp(fraction, 0.0, 1.0);
  const double target = fraction * static_cast<double>(probes);
  double covered = 0.0;
  size_t count = 0;
  for (size_t size : region_sizes) {
    if (covered >= target) break;
    covered += static_cast<double>(size);
    ++count;
  }
  return count;
}

PlanDiagramStats AnalyzePlanSpace(
    const std::function<PlanId(const std::vector<double>&)>& plan_at,
    int dims, size_t probes, double neighbor_distance, uint64_t seed) {
  PPC_CHECK(dims >= 1 && probes >= 1);
  Rng rng(seed);
  PlanDiagramStats stats;
  stats.probes = probes;

  std::map<PlanId, size_t> counts;
  for (size_t i = 0; i < probes; ++i) {
    std::vector<double> x(static_cast<size_t>(dims));
    for (double& v : x) v = rng.Uniform();
    ++counts[plan_at(x)];
  }
  stats.distinct_plans = counts.size();

  stats.region_sizes.reserve(counts.size());
  for (const auto& [plan, count] : counts) {
    stats.region_sizes.push_back(count);
  }
  std::sort(stats.region_sizes.rbegin(), stats.region_sizes.rend());
  stats.largest_region_fraction =
      static_cast<double>(stats.region_sizes.front()) /
      static_cast<double>(probes);

  // Gini coefficient over region sizes.
  if (stats.region_sizes.size() > 1) {
    // With sizes sorted descending, iterate ascending for the standard
    // formula G = (2 * sum_i i*x_(i) / (n * sum x)) - (n+1)/n.
    std::vector<size_t> ascending(stats.region_sizes.rbegin(),
                                  stats.region_sizes.rend());
    double weighted = 0.0, total = 0.0;
    for (size_t i = 0; i < ascending.size(); ++i) {
      weighted += static_cast<double>(i + 1) *
                  static_cast<double>(ascending[i]);
      total += static_cast<double>(ascending[i]);
    }
    const double n = static_cast<double>(ascending.size());
    stats.gini = Clamp(2.0 * weighted / (n * total) - (n + 1.0) / n, 0.0,
                       1.0);
  }

  // Shannon entropy.
  for (size_t size : stats.region_sizes) {
    const double p =
        static_cast<double>(size) / static_cast<double>(probes);
    if (p > 0.0) stats.entropy_bits -= p * std::log2(p);
  }

  // Boundary density: random pairs at the given distance.
  size_t differing = 0;
  for (size_t i = 0; i < probes; ++i) {
    std::vector<double> x(static_cast<size_t>(dims));
    for (double& v : x) v = rng.Uniform();
    // Random direction scaled to neighbor_distance.
    std::vector<double> y(x);
    double norm = 0.0;
    std::vector<double> dir(static_cast<size_t>(dims));
    for (double& v : dir) {
      v = rng.Gaussian();
      norm += v * v;
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    for (size_t d = 0; d < y.size(); ++d) {
      y[d] = Clamp(x[d] + dir[d] / norm * neighbor_distance, 0.0, 1.0);
    }
    if (plan_at(x) != plan_at(y)) ++differing;
  }
  stats.boundary_fraction =
      static_cast<double>(differing) / static_cast<double>(probes);
  return stats;
}

}  // namespace ppc
