#include "workload/scenarios.h"

#include <cmath>
#include <cstdint>

#include "common/macros.h"
#include "common/math_utils.h"
#include "common/rng.h"

namespace ppc {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Shared state of every scenario: the validated config, one seeded Rng
/// that all randomness flows through (so the stream is a pure function
/// of the seed), and the open-loop arrival clock.
class ScenarioBase : public ScenarioGenerator {
 public:
  ScenarioBase(std::string name, const ScenarioConfig& config)
      : name_(std::move(name)), config_(config), rng_(config.seed) {}

  const std::string& name() const override { return name_; }
  const ScenarioConfig& config() const override { return config_; }

 protected:
  size_t TemplateDims(size_t template_index) const {
    return static_cast<size_t>(
        config_.templates[template_index].dimensions);
  }

  /// Advances the arrival clock by one exponential inter-arrival at
  /// `rate` events/second and returns the new clock value.
  double AdvanceExponential(double rate) {
    // -log1p(-u) maps u in [0,1) to (0, inf) without ever taking log(0).
    clock_seconds_ += -std::log1p(-rng_.Uniform()) / rate;
    return clock_seconds_;
  }

  std::string name_;
  ScenarioConfig config_;
  Rng rng_;
  double clock_seconds_ = 0.0;
};

/// Zipf-skewed multi-tenant template popularity.
class ZipfTenantsScenario : public ScenarioBase {
 public:
  explicit ZipfTenantsScenario(const ScenarioConfig& config)
      : ScenarioBase("zipf_tenants", config) {
    const auto& opts = config_.zipf_tenants;
    const size_t tenants = opts.tenant_count == 0 ? 1 : opts.tenant_count;
    // Zipf CDF over tenant ranks: weight(k) = (k+1)^-exponent.
    cdf_.reserve(tenants);
    double total = 0.0;
    for (size_t k = 0; k < tenants; ++k) {
      total += std::pow(static_cast<double>(k + 1), -opts.exponent);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
    // Per-tenant home: a template and a cluster center in its space,
    // drawn once here so the mapping is part of the seed's contract.
    tenant_template_.reserve(tenants);
    tenant_center_.reserve(tenants);
    for (size_t k = 0; k < tenants; ++k) {
      const size_t t = k % config_.templates.size();
      tenant_template_.push_back(static_cast<uint32_t>(t));
      std::vector<double> center(TemplateDims(t));
      for (double& c : center) c = rng_.Uniform(0.05, 0.95);
      tenant_center_.push_back(std::move(center));
    }
  }

  ScenarioEvent Next() override {
    ScenarioEvent event;
    event.arrival_seconds = AdvanceExponential(config_.events_per_second);
    // Inverse-CDF draw of the tenant rank.
    const double u = rng_.Uniform();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    event.template_index = tenant_template_[lo];
    const std::vector<double>& center = tenant_center_[lo];
    event.point.resize(center.size());
    for (size_t d = 0; d < center.size(); ++d) {
      event.point[d] = Clamp(
          center[d] + rng_.Gaussian(0.0, config_.zipf_tenants.cluster_stddev),
          0.0, 1.0);
    }
    return event;
  }

 private:
  std::vector<double> cdf_;
  std::vector<uint32_t> tenant_template_;
  std::vector<std::vector<double>> tenant_center_;
};

/// Sinusoidal load curve with injected flash crowds, sampled exactly as
/// a non-homogeneous Poisson process by thinning against the peak rate.
class DiurnalFlashScenario : public ScenarioBase {
 public:
  explicit DiurnalFlashScenario(const ScenarioConfig& config)
      : ScenarioBase("diurnal_flash", config) {
    for (size_t t = 0; t < config_.templates.size(); ++t) {
      std::vector<double> center(TemplateDims(t));
      for (double& c : center) c = rng_.Uniform(0.1, 0.9);
      centers_.push_back(std::move(center));
    }
  }

  /// The instantaneous arrival rate at scenario time `t`.
  double RateAt(double t) const {
    const auto& opts = config_.diurnal_flash;
    double rate = config_.events_per_second *
                  (1.0 + opts.amplitude *
                             std::sin(kTwoPi * t / opts.period_seconds));
    if (InFlash(t)) rate *= opts.flash_multiplier;
    return rate;
  }

  /// Whether `t` falls inside one of the scheduled flash-crowd windows.
  bool InFlash(double t) const {
    const auto& opts = config_.diurnal_flash;
    if (opts.flash_multiplier <= 1.0 || opts.flash_duration_seconds <= 0.0 ||
        opts.flash_every_seconds <= 0.0) {
      return false;
    }
    const double since = t - opts.first_flash_at_seconds;
    if (since < 0.0) return false;
    return std::fmod(since, opts.flash_every_seconds) <
           opts.flash_duration_seconds;
  }

  ScenarioEvent Next() override {
    const auto& opts = config_.diurnal_flash;
    const double peak = config_.events_per_second *
                        (1.0 + opts.amplitude) *
                        (opts.flash_multiplier > 1.0 ? opts.flash_multiplier
                                                     : 1.0);
    // Thinning: candidate arrivals at the constant peak rate, accepted
    // with probability rate(t)/peak — an exact sampler for the
    // non-homogeneous process, and still a pure function of the seed.
    for (;;) {
      const double t = AdvanceExponential(peak);
      if (rng_.Uniform() * peak <= RateAt(t)) break;
    }
    ScenarioEvent event;
    event.arrival_seconds = clock_seconds_;
    const size_t t_idx = next_template_;
    next_template_ = (next_template_ + 1) % config_.templates.size();
    event.template_index = static_cast<uint32_t>(t_idx);
    const std::vector<double>& center = centers_[t_idx];
    event.point.resize(center.size());
    for (size_t d = 0; d < center.size(); ++d) {
      event.point[d] =
          Clamp(center[d] + rng_.Gaussian(0.0, opts.cluster_stddev), 0.0,
                1.0);
    }
    return event;
  }

 private:
  std::vector<std::vector<double>> centers_;
  size_t next_template_ = 0;
};

/// Non-axis-aligned, correlated parameter distributions: Gaussian
/// ridges along random unit directions.
class CorrelatedPredicatesScenario : public ScenarioBase {
 public:
  explicit CorrelatedPredicatesScenario(const ScenarioConfig& config)
      : ScenarioBase("correlated_predicates", config) {
    const auto& opts = config_.correlated_predicates;
    const size_t ridges = opts.ridge_count == 0 ? 1 : opts.ridge_count;
    per_template_.resize(config_.templates.size());
    for (size_t t = 0; t < config_.templates.size(); ++t) {
      const size_t dims = TemplateDims(t);
      for (size_t r = 0; r < ridges; ++r) {
        Ridge ridge;
        ridge.anchor.resize(dims);
        for (double& a : ridge.anchor) a = rng_.Uniform(0.25, 0.75);
        ridge.direction = RandomObliqueUnit(dims);
        per_template_[t].push_back(std::move(ridge));
      }
    }
  }

  ScenarioEvent Next() override {
    const auto& opts = config_.correlated_predicates;
    ScenarioEvent event;
    event.arrival_seconds = AdvanceExponential(config_.events_per_second);
    const size_t t_idx =
        static_cast<size_t>(rng_.UniformInt(
            static_cast<uint64_t>(config_.templates.size())));
    event.template_index = static_cast<uint32_t>(t_idx);
    const std::vector<Ridge>& ridges = per_template_[t_idx];
    const Ridge& ridge = ridges[static_cast<size_t>(
        rng_.UniformInt(static_cast<uint64_t>(ridges.size())))];
    const double along = rng_.Gaussian(0.0, opts.major_stddev);
    event.point.resize(ridge.anchor.size());
    for (size_t d = 0; d < ridge.anchor.size(); ++d) {
      event.point[d] = Clamp(ridge.anchor[d] + along * ridge.direction[d] +
                                 rng_.Gaussian(0.0, opts.minor_stddev),
                             0.0, 1.0);
    }
    return event;
  }

 private:
  struct Ridge {
    std::vector<double> anchor;
    std::vector<double> direction;
  };

  /// A random unit vector that is genuinely oblique: redrawn (from the
  /// same seeded stream) until no single coordinate carries more than
  /// 90% of its mass, so a 1-D degenerate draw cannot produce the very
  /// axis-aligned ridge the scenario exists to avoid. For dims == 1
  /// obliqueness is impossible and the lone axis is returned.
  std::vector<double> RandomObliqueUnit(size_t dims) {
    std::vector<double> v(dims);
    if (dims == 1) {
      v[0] = 1.0;
      return v;
    }
    for (;;) {
      double norm = 0.0;
      for (double& x : v) {
        x = rng_.Gaussian();
        norm += x * x;
      }
      norm = std::sqrt(norm);
      if (norm < 1e-9) continue;
      double max_abs = 0.0;
      for (double& x : v) {
        x /= norm;
        max_abs = std::max(max_abs, std::abs(x));
      }
      if (max_abs <= 0.9) return v;
    }
  }

  std::vector<std::vector<Ridge>> per_template_;
};

/// Scheduled concentration jumps: uniform draws from a per-phase box.
class AdversarialDriftScenario : public ScenarioBase {
 public:
  explicit AdversarialDriftScenario(const ScenarioConfig& config)
      : ScenarioBase("adversarial_drift", config) {
    phases_ = config_.adversarial_drift.phases;
    if (phases_.empty()) {
      // The default 3-phase shape of bench_workload_zoo: uniform
      // background, a home box, then the adversarial jump.
      phases_ = {{600, 0.5, 0.48}, {800, 0.75, 0.05}, {1600, 0.25, 0.05}};
    }
  }

  ScenarioEvent Next() override {
    const ScenarioConfig::AdversarialDriftOptions::Phase& phase =
        phases_[phase_index_];
    ScenarioEvent event;
    event.arrival_seconds = AdvanceExponential(config_.events_per_second);
    // Drift is a per-template signal: every event targets templates[0]
    // so the full concentration jump lands in one predictor's window.
    event.template_index = 0;
    const size_t dims = TemplateDims(0);
    event.point.resize(dims);
    for (double& x : event.point) {
      x = Clamp(phase.center + rng_.Uniform(-phase.half_width,
                                            phase.half_width),
                0.0, 1.0);
    }
    // The last phase repeats forever once the schedule is exhausted.
    if (++events_in_phase_ >= phase.events &&
        phase_index_ + 1 < phases_.size()) {
      ++phase_index_;
      events_in_phase_ = 0;
    }
    return event;
  }

 private:
  std::vector<ScenarioConfig::AdversarialDriftOptions::Phase> phases_;
  size_t phase_index_ = 0;
  size_t events_in_phase_ = 0;
};

}  // namespace

const std::vector<std::string>& ScenarioNames() {
  static const std::vector<std::string> names = {
      "zipf_tenants", "diurnal_flash", "correlated_predicates",
      "adversarial_drift"};
  return names;
}

Result<std::unique_ptr<ScenarioGenerator>> MakeScenario(
    const std::string& name, const ScenarioConfig& config) {
  if (config.templates.empty()) {
    return Status::InvalidArgument("scenario config has no templates");
  }
  for (const ScenarioTemplate& tmpl : config.templates) {
    if (tmpl.dimensions < 1) {
      return Status::InvalidArgument("scenario template '" + tmpl.name +
                                     "' has dimensions < 1");
    }
  }
  if (!(config.events_per_second > 0.0)) {
    return Status::InvalidArgument("events_per_second must be > 0");
  }
  std::unique_ptr<ScenarioGenerator> generator;
  if (name == "zipf_tenants") {
    generator = std::make_unique<ZipfTenantsScenario>(config);
  } else if (name == "diurnal_flash") {
    generator = std::make_unique<DiurnalFlashScenario>(config);
  } else if (name == "correlated_predicates") {
    generator = std::make_unique<CorrelatedPredicatesScenario>(config);
  } else if (name == "adversarial_drift") {
    generator = std::make_unique<AdversarialDriftScenario>(config);
  } else {
    return Status::InvalidArgument("unknown scenario '" + name + "'");
  }
  return generator;
}

std::vector<ScenarioEvent> GenerateEvents(ScenarioGenerator* generator,
                                          size_t count) {
  PPC_CHECK(generator != nullptr);
  std::vector<ScenarioEvent> events;
  events.reserve(count);
  for (size_t i = 0; i < count; ++i) events.push_back(generator->Next());
  return events;
}

}  // namespace ppc
