#ifndef PPC_WORKLOAD_TEMPLATE_PARSER_H_
#define PPC_WORKLOAD_TEMPLATE_PARSER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "workload/query_template.h"

namespace ppc {

/// Parses the SQL dialect query templates are written in:
///
///   SELECT COUNT(*) | *
///   FROM table [, table ...]
///   [WHERE conjunct [AND conjunct ...]]
///
/// where each conjunct is either an equi-join `t1.c1 = t2.c2` or a
/// parameterized range predicate `t.c <= $k`. Parameter placeholders must
/// be numbered densely from $0 in order of first appearance ($k may repeat
/// only if referring to the same predicate). `COUNT(*)` selects an
/// aggregating template, `*` a non-aggregating one.
///
/// This is the inverse of QueryTemplate::ToSql(): for every well-formed
/// template, Parse(tmpl.ToSql()) == tmpl.
///
/// If `catalog` is non-null, tables and columns are validated against it.
Result<QueryTemplate> ParseQueryTemplate(const std::string& sql,
                                         const Catalog* catalog = nullptr,
                                         std::string name = "parsed");

}  // namespace ppc

#endif  // PPC_WORKLOAD_TEMPLATE_PARSER_H_
