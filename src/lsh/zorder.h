#ifndef PPC_LSH_ZORDER_H_
#define PPC_LSH_ZORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppc {

/// A half-open interval [lo, hi) of normalized Z-order curve positions.
struct ZInterval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  bool operator==(const ZInterval& other) const = default;
};

/// Z-order (Morton) space-filling curve over a fixed-resolution grid
/// (paper Sec. IV-C: intermediate spaces are "linearized on [0,1] according
/// to their z-orders" so multi-dimensional plan-space distributions can be
/// stored in unidimensional database histograms).
class ZOrderCurve {
 public:
  /// A curve over `dimensions`-dimensional cells with `bits_per_dim` bits
  /// of resolution per dimension. dimensions * bits_per_dim must be <= 62.
  ZOrderCurve(int dimensions, int bits_per_dim);

  /// Bit-interleaves the cell coordinates into a Morton code. Coordinates
  /// are masked to bits_per_dim bits. The pointer overload (cells must
  /// hold dimensions() entries) serves allocation-free callers on the
  /// serving fast path.
  uint64_t Interleave(const std::vector<uint32_t>& cells) const;
  uint64_t Interleave(const uint32_t* cells) const;

  /// Inverse of Interleave.
  std::vector<uint32_t> Deinterleave(uint64_t code) const;

  /// Morton code normalized to [0, 1): Interleave / 2^(total bits).
  double Linearize(const std::vector<uint32_t>& cells) const;
  double Linearize(const uint32_t* cells) const;

  /// Decomposes the cell box [lo[d], hi[d]] (inclusive per dimension) into
  /// disjoint, sorted curve intervals covering exactly the cells inside
  /// the box — the classic quadtree descent behind BIGMIN-style Z-range
  /// queries. When the exact decomposition exceeds `max_intervals`,
  /// adjacent intervals separated by the smallest gaps are merged, so the
  /// result conservatively over-covers (never under-covers) the box.
  ///
  /// This addresses the paper's Sec. IV-C "false negatives phenomenon":
  /// a contiguous plan-space region split by the Z-order into
  /// non-contiguous intervals is queried as several ranges instead of one.
  std::vector<ZInterval> DecomposeBox(const std::vector<uint32_t>& lo,
                                      const std::vector<uint32_t>& hi,
                                      size_t max_intervals) const;

  int dimensions() const { return dimensions_; }
  int bits_per_dim() const { return bits_per_dim_; }
  int total_bits() const { return dimensions_ * bits_per_dim_; }
  /// Number of cells along one axis (2^bits_per_dim).
  uint32_t cells_per_dim() const { return uint32_t{1} << bits_per_dim_; }

 private:
  int dimensions_;
  int bits_per_dim_;
  /// Per-dimension scatter masks for the BMI2 pdep Interleave fast path:
  /// patterns_[d] has a bit at position b * dimensions + d for each
  /// b < bits_per_dim. Precomputed once; the scalar bit loop remains the
  /// fallback and produces identical codes.
  std::vector<uint64_t> pdep_patterns_;
  /// CPU capability cached at construction (immutable per process); the
  /// per-call check in Interleave then reduces to one atomic tier load.
  bool cpu_has_bmi2_ = false;
};

}  // namespace ppc

#endif  // PPC_LSH_ZORDER_H_
