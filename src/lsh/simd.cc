#include "lsh/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define PPC_SIMD_X86 1
#include <immintrin.h>
#endif

namespace ppc {
namespace simd {

namespace {

constexpr int kTierUnresolved = -1;
std::atomic<int> g_tier{kTierUnresolved};

/// The across-points projection kernel keeps one __m256d of centered
/// coordinates per input dimension on the stack; points wider than this
/// take the scalar path (plan spaces are <= 62-dimensional by the Z-order
/// bit budget, so this is not a practical limit).
constexpr size_t kMaxAvx2InputDims = 64;

Tier ResolveTier() {
  const char* env = std::getenv("PPC_DISABLE_AVX2");
  const bool disabled =
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  if (disabled || !CpuSupportsAvx2()) return Tier::kScalar;
  return Tier::kAvx2;
}

}  // namespace

Tier ActiveTier() {
  int tier = g_tier.load(std::memory_order_relaxed);
  if (tier == kTierUnresolved) {
    // Benign race: ResolveTier is deterministic, concurrent first calls
    // store the same value.
    tier = static_cast<int>(ResolveTier());
    g_tier.store(tier, std::memory_order_relaxed);
  }
  return static_cast<Tier>(tier);
}

const char* TierName(Tier tier) {
  return tier == Tier::kAvx2 ? "avx2" : "scalar";
}

bool CpuSupportsAvx2() {
#ifdef PPC_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

void ReinitializeDispatchForTest() {
  g_tier.store(kTierUnresolved, std::memory_order_relaxed);
}

void ApplyBatchScalar(const double* projections, const double* shifts,
                      double scale, size_t input_dims, size_t output_dims,
                      const double* points, size_t count, double* out) {
  const size_t r = input_dims;
  const size_t s = output_dims;
  for (size_t p = 0; p < count; ++p) {
    const double* x = points + p * r;
    double* y = out + p * s;
    for (size_t j = 0; j < s; ++j) {
      const double* a = projections + j * r;
      double dot = 0.0;
      for (size_t i = 0; i < r; ++i) {
        dot += a[i] * (x[i] - 0.5) * scale;
      }
      y[j] = dot + shifts[j];
    }
  }
}

double HistogramRangeCountScalar(const double* left, const double* right,
                                 const double* count, const double* centroid,
                                 size_t buckets, double lo, double hi) {
  if (buckets == 0 || lo > hi) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < buckets; ++i) {
    const double width = right[i] - left[i];
    if (width <= 0.0) {
      // Point mass: counted iff inside the range.
      if (centroid[i] >= lo && centroid[i] <= hi) total += count[i];
      continue;
    }
    const double overlap =
        std::max(0.0, std::min(hi, right[i]) - std::max(lo, left[i]));
    total += count[i] * (overlap / width);
  }
  return total;
}

void HistogramRangeCountCostScalar(const double* left, const double* right,
                                   const double* count, const double* cost,
                                   const double* centroid, size_t buckets,
                                   double lo, double hi, double* count_out,
                                   double* cost_out) {
  double total_count = 0.0;
  double total_cost = 0.0;
  if (buckets > 0 && !(lo > hi)) {
    for (size_t i = 0; i < buckets; ++i) {
      const double width = right[i] - left[i];
      double frac;
      if (width <= 0.0) {
        frac = (centroid[i] >= lo && centroid[i] <= hi) ? 1.0 : 0.0;
      } else {
        const double overlap =
            std::max(0.0, std::min(hi, right[i]) - std::max(lo, left[i]));
        frac = overlap / width;
      }
      total_count += count[i] * frac;
      total_cost += cost[i] * frac;
    }
  }
  *count_out = total_count;
  *cost_out = total_cost;
}

void HistogramRangeCountManyScalar(const double* left, const double* right,
                                   const double* count,
                                   const double* centroid, size_t buckets,
                                   const double* bounds, size_t queries,
                                   double* out) {
  for (size_t q = 0; q < queries; ++q) {
    out[q] = HistogramRangeCountScalar(left, right, count, centroid, buckets,
                                       bounds[2 * q], bounds[2 * q + 1]);
  }
}

void HistogramRangeCountCostManyScalar(const double* left,
                                       const double* right,
                                       const double* count,
                                       const double* cost,
                                       const double* centroid, size_t buckets,
                                       const double* bounds, size_t queries,
                                       double* counts_out, double* costs_out) {
  for (size_t q = 0; q < queries; ++q) {
    HistogramRangeCountCostScalar(left, right, count, cost, centroid, buckets,
                                  bounds[2 * q], bounds[2 * q + 1],
                                  counts_out + q, costs_out + q);
  }
}

void CellIndexBatchScalar(const double* y, size_t n, double grid_lo,
                          double grid_extent, double cells, double max_index,
                          double* out) {
  for (size_t k = 0; k < n; ++k) {
    const double frac = (y[k] - grid_lo) / grid_extent;
    out[k] = std::min(std::max(std::floor(frac * cells), 0.0), max_index);
  }
}

#ifdef PPC_SIMD_X86

__attribute__((target("avx2,fma"))) void ApplyBatchAvx2(
    const double* projections, const double* shifts, double scale,
    size_t input_dims, size_t output_dims, const double* points, size_t count,
    double* out) {
  const size_t r = input_dims;
  const size_t s = output_dims;
  if (r > kMaxAvx2InputDims) {
    ApplyBatchScalar(projections, shifts, scale, r, s, points, count, out);
    return;
  }
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d vscale = _mm256_set1_pd(scale);
  __m256d centered[kMaxAvx2InputDims];
  size_t p = 0;
  for (; p + 4 <= count; p += 4) {
    // Four points per iteration, one per lane. Each lane runs the exact
    // scalar operation sequence — subtract, multiply, multiply, add, in
    // the same i order — so the lanes are bit-identical to four scalar
    // evaluations. (x[i] - 0.5) is hoisted out of the j loop; the scalar
    // code recomputes it per j, but subtraction is deterministic, so the
    // hoisted value is the same bits.
    const double* x0 = points + p * r;
    const double* x1 = x0 + r;
    const double* x2 = x1 + r;
    const double* x3 = x2 + r;
    for (size_t i = 0; i < r; ++i) {
      centered[i] =
          _mm256_sub_pd(_mm256_set_pd(x3[i], x2[i], x1[i], x0[i]), half);
    }
    for (size_t j = 0; j < s; ++j) {
      const double* a = projections + j * r;
      __m256d dot = _mm256_setzero_pd();
      for (size_t i = 0; i < r; ++i) {
        // Two explicit multiplies, never an FMA: fusing would round once
        // where the scalar oracle rounds twice and break bit-identity.
        const __m256d term = _mm256_mul_pd(
            _mm256_mul_pd(_mm256_set1_pd(a[i]), centered[i]), vscale);
        dot = _mm256_add_pd(dot, term);
      }
      const __m256d y = _mm256_add_pd(dot, _mm256_set1_pd(shifts[j]));
      double lanes[4];
      _mm256_storeu_pd(lanes, y);
      out[(p + 0) * s + j] = lanes[0];
      out[(p + 1) * s + j] = lanes[1];
      out[(p + 2) * s + j] = lanes[2];
      out[(p + 3) * s + j] = lanes[3];
    }
  }
  if (p < count) {
    ApplyBatchScalar(projections, shifts, scale, r, s, points + p * r,
                     count - p, out + p * s);
  }
}

__attribute__((target("avx2,fma"))) double HistogramRangeCountAvx2(
    const double* left, const double* right, const double* count,
    const double* centroid, size_t buckets, double lo, double hi) {
  // !(lo <= hi) also catches NaN bounds; the scalar path's `lo > hi` lets
  // NaN through but every per-bucket contribution then evaluates to +0.0,
  // so both tiers return exactly 0.0.
  if (buckets == 0 || !(lo <= hi)) return 0.0;
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  const __m256d zero = _mm256_setzero_pd();
  double total = 0.0;
  double contrib[4];
  size_t i = 0;
  for (; i + 4 <= buckets; i += 4) {
    // Four buckets per iteration. Per-lane arithmetic matches the scalar
    // expressions exactly; the only differences are sign-of-zero cases
    // (minpd/maxpd pick the second operand on equality where std::min/
    // std::max pick the first), and adding a -0.0 instead of skipping or
    // adding +0.0 cannot change a non-negative running sum.
    const __m256d l = _mm256_loadu_pd(left + i);
    const __m256d r = _mm256_loadu_pd(right + i);
    const __m256d c = _mm256_loadu_pd(count + i);
    const __m256d width = _mm256_sub_pd(r, l);
    const __m256d overlap = _mm256_max_pd(
        zero, _mm256_sub_pd(_mm256_min_pd(vhi, r), _mm256_max_pd(vlo, l)));
    // Lanes with width <= 0 divide by a non-positive width; the quotient
    // is blended away below before it can reach the sum.
    const __m256d spread = _mm256_mul_pd(c, _mm256_div_pd(overlap, width));
    const __m256d cen = _mm256_loadu_pd(centroid + i);
    const __m256d in_range =
        _mm256_and_pd(_mm256_cmp_pd(cen, vlo, _CMP_GE_OQ),
                      _mm256_cmp_pd(cen, vhi, _CMP_LE_OQ));
    const __m256d point_mass = _mm256_and_pd(c, in_range);
    const __m256d is_point = _mm256_cmp_pd(width, zero, _CMP_LE_OQ);
    _mm256_storeu_pd(contrib, _mm256_blendv_pd(spread, point_mass, is_point));
    // The scalar oracle accumulates bucket by bucket; preserving that
    // summation order is what keeps the total bit-identical.
    total += contrib[0];
    total += contrib[1];
    total += contrib[2];
    total += contrib[3];
  }
  for (; i < buckets; ++i) {
    const double width = right[i] - left[i];
    if (width <= 0.0) {
      if (centroid[i] >= lo && centroid[i] <= hi) total += count[i];
      continue;
    }
    const double overlap =
        std::max(0.0, std::min(hi, right[i]) - std::max(lo, left[i]));
    total += count[i] * (overlap / width);
  }
  return total;
}

__attribute__((target("avx2,fma"))) void HistogramRangeCountCostAvx2(
    const double* left, const double* right, const double* count,
    const double* cost, const double* centroid, size_t buckets, double lo,
    double hi, double* count_out, double* cost_out) {
  // !(lo <= hi) also catches NaN bounds; the scalar path's `lo > hi`
  // guard lets NaN through, but every per-bucket frac then evaluates to
  // +0.0 (NaN comparisons are false, max(0.0, NaN) picks 0.0), so both
  // tiers produce exactly (0.0, 0.0). The vector min/max lanes would NOT
  // reproduce that — minpd(NaN, r) yields r, not NaN — so the early-out
  // must reject NaN here.
  if (buckets == 0 || !(lo <= hi)) {
    *count_out = 0.0;
    *cost_out = 0.0;
    return;
  }
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  double total_count = 0.0;
  double total_cost = 0.0;
  double count_contrib[4];
  double cost_contrib[4];
  size_t i = 0;
  for (; i + 4 <= buckets; i += 4) {
    // Four buckets per iteration; each lane computes the scalar frac
    // expression exactly. As in HistogramRangeCountAvx2, minpd/maxpd
    // disagree with std::min/std::max only on the sign of zero, and a
    // count[i] * -0.0 = -0.0 term cannot change a sum that is never
    // negative (+0.0 + -0.0 = +0.0).
    const __m256d l = _mm256_loadu_pd(left + i);
    const __m256d r = _mm256_loadu_pd(right + i);
    const __m256d width = _mm256_sub_pd(r, l);
    const __m256d overlap = _mm256_max_pd(
        zero, _mm256_sub_pd(_mm256_min_pd(vhi, r), _mm256_max_pd(vlo, l)));
    // Lanes with width <= 0 divide by a non-positive width; the quotient
    // is blended away below before it can reach either sum.
    const __m256d frac_spread = _mm256_div_pd(overlap, width);
    const __m256d cen = _mm256_loadu_pd(centroid + i);
    const __m256d in_range =
        _mm256_and_pd(_mm256_cmp_pd(cen, vlo, _CMP_GE_OQ),
                      _mm256_cmp_pd(cen, vhi, _CMP_LE_OQ));
    const __m256d frac_point = _mm256_and_pd(one, in_range);
    const __m256d is_point = _mm256_cmp_pd(width, zero, _CMP_LE_OQ);
    const __m256d frac = _mm256_blendv_pd(frac_spread, frac_point, is_point);
    _mm256_storeu_pd(count_contrib,
                     _mm256_mul_pd(_mm256_loadu_pd(count + i), frac));
    _mm256_storeu_pd(cost_contrib,
                     _mm256_mul_pd(_mm256_loadu_pd(cost + i), frac));
    // The scalar oracle accumulates bucket by bucket; preserving that
    // summation order is what keeps both totals bit-identical.
    total_count += count_contrib[0];
    total_cost += cost_contrib[0];
    total_count += count_contrib[1];
    total_cost += cost_contrib[1];
    total_count += count_contrib[2];
    total_cost += cost_contrib[2];
    total_count += count_contrib[3];
    total_cost += cost_contrib[3];
  }
  for (; i < buckets; ++i) {
    const double width = right[i] - left[i];
    double frac;
    if (width <= 0.0) {
      frac = (centroid[i] >= lo && centroid[i] <= hi) ? 1.0 : 0.0;
    } else {
      const double overlap =
          std::max(0.0, std::min(hi, right[i]) - std::max(lo, left[i]));
      frac = overlap / width;
    }
    total_count += count[i] * frac;
    total_cost += cost[i] * frac;
  }
  *count_out = total_count;
  *cost_out = total_cost;
}

__attribute__((target("avx2,fma"))) void HistogramRangeCountManyAvx2(
    const double* left, const double* right, const double* count,
    const double* centroid, size_t buckets, const double* bounds,
    size_t queries, double* out) {
  const __m256d zero = _mm256_setzero_pd();
  size_t q = 0;
  for (; q + 4 <= queries; q += 4) {
    // One query per lane; every lane sweeps the buckets in order, running
    // the exact scalar accumulation sequence, so bit-identity needs no
    // per-bucket summation tricks. The probe values are bucket-uniform
    // broadcasts, which also lets the point-mass branch stay a scalar
    // branch instead of a blend.
    const __m256d vlo = _mm256_set_pd(bounds[2 * q + 6], bounds[2 * q + 4],
                                      bounds[2 * q + 2], bounds[2 * q]);
    const __m256d vhi = _mm256_set_pd(bounds[2 * q + 7], bounds[2 * q + 5],
                                      bounds[2 * q + 3], bounds[2 * q + 1]);
    __m256d acc = zero;
    for (size_t i = 0; i < buckets; ++i) {
      const double width = right[i] - left[i];
      __m256d contrib;
      if (width <= 0.0) {
        const __m256d cen = _mm256_set1_pd(centroid[i]);
        const __m256d in_range =
            _mm256_and_pd(_mm256_cmp_pd(cen, vlo, _CMP_GE_OQ),
                          _mm256_cmp_pd(cen, vhi, _CMP_LE_OQ));
        contrib = _mm256_and_pd(_mm256_set1_pd(count[i]), in_range);
      } else {
        // minpd(r, vhi) and maxpd(l, vlo) return their SECOND operand on
        // equality and NaN, matching std::min(hi, right) / std::max(lo,
        // left); maxpd(zero, x)'s zero-sign and NaN differences are
        // handled by the non-negative-sum argument and the validity mask
        // below.
        const __m256d overlap = _mm256_max_pd(
            zero, _mm256_sub_pd(_mm256_min_pd(_mm256_set1_pd(right[i]), vhi),
                                _mm256_max_pd(_mm256_set1_pd(left[i]), vlo)));
        contrib = _mm256_mul_pd(
            _mm256_set1_pd(count[i]),
            _mm256_div_pd(overlap, _mm256_set1_pd(width)));
      }
      acc = _mm256_add_pd(acc, contrib);
    }
    // Inverted lanes accumulate exactly +0.0 on their own; NaN-bound
    // lanes do not (maxpd(0, NaN) yields NaN where std::max picks 0), so
    // mask every !(lo <= hi) lane to the scalar's 0.0.
    acc = _mm256_and_pd(acc, _mm256_cmp_pd(vlo, vhi, _CMP_LE_OQ));
    _mm256_storeu_pd(out + q, acc);
  }
  if (q < queries) {
    HistogramRangeCountManyScalar(left, right, count, centroid, buckets,
                                  bounds + 2 * q, queries - q, out + q);
  }
}

__attribute__((target("avx2,fma"))) void HistogramRangeCountCostManyAvx2(
    const double* left, const double* right, const double* count,
    const double* cost, const double* centroid, size_t buckets,
    const double* bounds, size_t queries, double* counts_out,
    double* costs_out) {
  const __m256d zero = _mm256_setzero_pd();
  size_t q = 0;
  for (; q + 4 <= queries; q += 4) {
    // One query per lane, both accumulators swept in bucket order — the
    // same structural bit-identity argument as HistogramRangeCountManyAvx2
    // applied to the frac formulation of HistogramRangeCountCostScalar.
    const __m256d vlo = _mm256_set_pd(bounds[2 * q + 6], bounds[2 * q + 4],
                                      bounds[2 * q + 2], bounds[2 * q]);
    const __m256d vhi = _mm256_set_pd(bounds[2 * q + 7], bounds[2 * q + 5],
                                      bounds[2 * q + 3], bounds[2 * q + 1]);
    __m256d acc_count = zero;
    __m256d acc_cost = zero;
    for (size_t i = 0; i < buckets; ++i) {
      const double width = right[i] - left[i];
      __m256d frac;
      if (width <= 0.0) {
        const __m256d cen = _mm256_set1_pd(centroid[i]);
        const __m256d in_range =
            _mm256_and_pd(_mm256_cmp_pd(cen, vlo, _CMP_GE_OQ),
                          _mm256_cmp_pd(cen, vhi, _CMP_LE_OQ));
        frac = _mm256_and_pd(_mm256_set1_pd(1.0), in_range);
      } else {
        const __m256d overlap = _mm256_max_pd(
            zero, _mm256_sub_pd(_mm256_min_pd(_mm256_set1_pd(right[i]), vhi),
                                _mm256_max_pd(_mm256_set1_pd(left[i]), vlo)));
        frac = _mm256_div_pd(overlap, _mm256_set1_pd(width));
      }
      acc_count =
          _mm256_add_pd(acc_count, _mm256_mul_pd(_mm256_set1_pd(count[i]), frac));
      acc_cost =
          _mm256_add_pd(acc_cost, _mm256_mul_pd(_mm256_set1_pd(cost[i]), frac));
    }
    // Mask !(lo <= hi) lanes to the scalar's (0.0, 0.0) — see
    // HistogramRangeCountManyAvx2 for why NaN lanes need this.
    const __m256d valid = _mm256_cmp_pd(vlo, vhi, _CMP_LE_OQ);
    _mm256_storeu_pd(counts_out + q, _mm256_and_pd(acc_count, valid));
    _mm256_storeu_pd(costs_out + q, _mm256_and_pd(acc_cost, valid));
  }
  if (q < queries) {
    HistogramRangeCountCostManyScalar(left, right, count, cost, centroid,
                                      buckets, bounds + 2 * q, queries - q,
                                      counts_out + q, costs_out + q);
  }
}

__attribute__((target("avx2,fma"))) void CellIndexBatchAvx2(
    const double* y, size_t n, double grid_lo, double grid_extent,
    double cells, double max_index, double* out) {
  const __m256d vlo = _mm256_set1_pd(grid_lo);
  const __m256d vextent = _mm256_set1_pd(grid_extent);
  const __m256d vcells = _mm256_set1_pd(cells);
  const __m256d vmax = _mm256_set1_pd(max_index);
  const __m256d zero = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d frac =
        _mm256_div_pd(_mm256_sub_pd(_mm256_loadu_pd(y + k), vlo), vextent);
    const __m256d idx = _mm256_floor_pd(_mm256_mul_pd(frac, vcells));
    // Clamp(idx, 0, max) = std::min(std::max(idx, 0.0), max_index);
    // maxpd/minpd with idx as the second operand return idx on equality
    // and NaN exactly as the std:: forms do.
    const __m256d clamped =
        _mm256_min_pd(vmax, _mm256_max_pd(zero, idx));
    _mm256_storeu_pd(out + k, clamped);
  }
  if (k < n) {
    CellIndexBatchScalar(y + k, n - k, grid_lo, grid_extent, cells,
                         max_index, out + k);
  }
}

bool CpuSupportsBmi2() { return __builtin_cpu_supports("bmi2"); }

__attribute__((target("bmi2"))) uint64_t InterleavePdep(
    const uint32_t* cells, int dims, uint32_t mask,
    const uint64_t* patterns) {
  uint64_t code = 0;
  for (int d = 0; d < dims; ++d) {
    code |= _pdep_u64(cells[d] & mask, patterns[d]);
  }
  return code;
}

#else  // !PPC_SIMD_X86

void ApplyBatchAvx2(const double* projections, const double* shifts,
                    double scale, size_t input_dims, size_t output_dims,
                    const double* points, size_t count, double* out) {
  ApplyBatchScalar(projections, shifts, scale, input_dims, output_dims,
                   points, count, out);
}

double HistogramRangeCountAvx2(const double* left, const double* right,
                               const double* count, const double* centroid,
                               size_t buckets, double lo, double hi) {
  return HistogramRangeCountScalar(left, right, count, centroid, buckets, lo,
                                   hi);
}

void HistogramRangeCountCostAvx2(const double* left, const double* right,
                                 const double* count, const double* cost,
                                 const double* centroid, size_t buckets,
                                 double lo, double hi, double* count_out,
                                 double* cost_out) {
  HistogramRangeCountCostScalar(left, right, count, cost, centroid, buckets,
                                lo, hi, count_out, cost_out);
}

void HistogramRangeCountManyAvx2(const double* left, const double* right,
                                 const double* count, const double* centroid,
                                 size_t buckets, const double* bounds,
                                 size_t queries, double* out) {
  HistogramRangeCountManyScalar(left, right, count, centroid, buckets,
                                bounds, queries, out);
}

void HistogramRangeCountCostManyAvx2(const double* left, const double* right,
                                     const double* count, const double* cost,
                                     const double* centroid, size_t buckets,
                                     const double* bounds, size_t queries,
                                     double* counts_out, double* costs_out) {
  HistogramRangeCountCostManyScalar(left, right, count, cost, centroid,
                                    buckets, bounds, queries, counts_out,
                                    costs_out);
}

void CellIndexBatchAvx2(const double* y, size_t n, double grid_lo,
                        double grid_extent, double cells, double max_index,
                        double* out) {
  CellIndexBatchScalar(y, n, grid_lo, grid_extent, cells, max_index, out);
}

bool CpuSupportsBmi2() { return false; }

uint64_t InterleavePdep(const uint32_t* cells, int dims, uint32_t mask,
                        const uint64_t* patterns) {
  // Unreachable off x86 (CpuSupportsBmi2() is false); the scalar bit loop
  // in ZOrderCurve::Interleave is the only path.
  (void)cells;
  (void)dims;
  (void)mask;
  (void)patterns;
  return 0;
}

#endif  // PPC_SIMD_X86

void ApplyBatch(const double* projections, const double* shifts, double scale,
                size_t input_dims, size_t output_dims, const double* points,
                size_t count, double* out) {
  if (ActiveTier() == Tier::kAvx2) {
    ApplyBatchAvx2(projections, shifts, scale, input_dims, output_dims,
                   points, count, out);
  } else {
    ApplyBatchScalar(projections, shifts, scale, input_dims, output_dims,
                     points, count, out);
  }
}

double HistogramRangeCount(const double* left, const double* right,
                           const double* count, const double* centroid,
                           size_t buckets, double lo, double hi) {
  if (ActiveTier() == Tier::kAvx2) {
    return HistogramRangeCountAvx2(left, right, count, centroid, buckets, lo,
                                   hi);
  }
  return HistogramRangeCountScalar(left, right, count, centroid, buckets, lo,
                                   hi);
}

void HistogramRangeCountCost(const double* left, const double* right,
                             const double* count, const double* cost,
                             const double* centroid, size_t buckets,
                             double lo, double hi, double* count_out,
                             double* cost_out) {
  if (ActiveTier() == Tier::kAvx2) {
    HistogramRangeCountCostAvx2(left, right, count, cost, centroid, buckets,
                                lo, hi, count_out, cost_out);
  } else {
    HistogramRangeCountCostScalar(left, right, count, cost, centroid, buckets,
                                  lo, hi, count_out, cost_out);
  }
}

void HistogramRangeCountMany(const double* left, const double* right,
                             const double* count, const double* centroid,
                             size_t buckets, const double* bounds,
                             size_t queries, double* out) {
  if (ActiveTier() == Tier::kAvx2) {
    HistogramRangeCountManyAvx2(left, right, count, centroid, buckets,
                                bounds, queries, out);
  } else {
    HistogramRangeCountManyScalar(left, right, count, centroid, buckets,
                                  bounds, queries, out);
  }
}

void HistogramRangeCountCostMany(const double* left, const double* right,
                                 const double* count, const double* cost,
                                 const double* centroid, size_t buckets,
                                 const double* bounds, size_t queries,
                                 double* counts_out, double* costs_out) {
  if (ActiveTier() == Tier::kAvx2) {
    HistogramRangeCountCostManyAvx2(left, right, count, cost, centroid,
                                    buckets, bounds, queries, counts_out,
                                    costs_out);
  } else {
    HistogramRangeCountCostManyScalar(left, right, count, cost, centroid,
                                      buckets, bounds, queries, counts_out,
                                      costs_out);
  }
}

void CellIndexBatch(const double* y, size_t n, double grid_lo,
                    double grid_extent, double cells, double max_index,
                    double* out) {
  if (ActiveTier() == Tier::kAvx2) {
    CellIndexBatchAvx2(y, n, grid_lo, grid_extent, cells, max_index, out);
  } else {
    CellIndexBatchScalar(y, n, grid_lo, grid_extent, cells, max_index, out);
  }
}

}  // namespace simd
}  // namespace ppc
