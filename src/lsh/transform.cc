#include "lsh/transform.h"

#include <cmath>

#include "common/macros.h"
#include "common/math_utils.h"
#include "lsh/simd.h"

namespace ppc {

int DefaultOutputDims(int input_dims) {
  // The paper permits s << r "when dimensionality reduction is necessary";
  // empirically (bench_ablation_projection) projecting away dimensions
  // collapses far-apart plan regions onto each other and destroys the
  // density ratios the confidence model needs, so the default keeps s = r.
  // Callers that want reduction set output_dims explicitly.
  return input_dims;
}

RandomizedTransform::RandomizedTransform(const TransformConfig& config,
                                         Rng* rng)
    : config_(config),
      curve_(config.output_dims, config.bits_per_dim) {
  PPC_CHECK(rng != nullptr);
  PPC_CHECK(config.input_dims >= 1 && config.output_dims >= 1);
  const int r = config.input_dims;
  const int s = config.output_dims;

  // lambda: radius of the hypersphere with the volume of [-1,1]^r.
  const double lambda =
      HypersphereRadiusForVolume(r, std::pow(2.0, static_cast<double>(r)));
  // Step 1: [0,1]^r - 0.5 -> [-0.5,0.5]^r, scaled so vertices reach S.
  scale_ = 2.0 * lambda / std::sqrt(static_cast<double>(r));

  // Transformed coordinates satisfy |a_j . x'| <= ||x'|| <= lambda.
  const uint32_t cells = curve_.cells_per_dim();
  const double raw_extent = 2.0 * lambda;
  const double cell_width = raw_extent / static_cast<double>(cells);
  // Shifts stay within one cell width; widen the grid by one cell so
  // shifted points cannot fall off the high end.
  grid_lo_ = -lambda;
  grid_extent_ = raw_extent + cell_width;

  projections_.resize(static_cast<size_t>(s) * static_cast<size_t>(r));
  shifts_.resize(static_cast<size_t>(s));
  for (int j = 0; j < s; ++j) {
    double* a = projections_.data() +
                static_cast<size_t>(j) * static_cast<size_t>(r);
    double norm = 0.0;
    for (int i = 0; i < r; ++i) {
      a[i] = rng->Gaussian();
      norm += a[i] * a[i];
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    for (int i = 0; i < r; ++i) a[i] /= norm;
    shifts_[static_cast<size_t>(j)] = rng->Uniform(0.0, cell_width);
  }

  // Fold the per-dimension range normalization x'_i = (x_i - lo_i)/span_i
  // into the projection matrix and shifts. The kernel computes
  //   y_j = sum_i a_ji * (x_i - 0.5) * scale + b_j,
  // and a_ji * (x'_i - 0.5) = (a_ji/span_i) * (x_i - 0.5)
  //                           + a_ji * ((0.5 - lo_i)/span_i - 0.5),
  // so dividing each column by its span and absorbing the constant term
  // into b_j reproduces the transform over normalized coordinates with
  // zero kernel changes. The identity fit skips the fold entirely, so
  // generation-0 transforms stay bit-identical to the historical ones.
  if (!config.input_lo.empty()) {
    PPC_CHECK(static_cast<int>(config.input_lo.size()) == r &&
              static_cast<int>(config.input_hi.size()) == r);
    for (int j = 0; j < s; ++j) {
      double* a = projections_.data() +
                  static_cast<size_t>(j) * static_cast<size_t>(r);
      double correction = 0.0;
      for (int i = 0; i < r; ++i) {
        const double lo = config.input_lo[static_cast<size_t>(i)];
        const double span = config.input_hi[static_cast<size_t>(i)] - lo;
        PPC_CHECK(span > 0.0);
        correction += a[i] * ((0.5 - lo) / span - 0.5);
        a[i] /= span;
      }
      shifts_[static_cast<size_t>(j)] += scale_ * correction;
    }
  }
}

void RandomizedTransform::ApplyBatch(const double* points, size_t count,
                                     double* out) const {
  // Runtime-dispatched kernel (src/lsh/simd.*): AVX2 across points when
  // the CPU has it, the historical scalar loop otherwise — bit-identical
  // either way, which the side-by-side kernel tests enforce.
  simd::ApplyBatch(projections_.data(), shifts_.data(), scale_,
                   static_cast<size_t>(config_.input_dims),
                   static_cast<size_t>(config_.output_dims), points, count,
                   out);
}

std::vector<double> RandomizedTransform::Apply(
    const std::vector<double>& point) const {
  PPC_DCHECK(static_cast<int>(point.size()) == config_.input_dims);
  std::vector<double> out(static_cast<size_t>(config_.output_dims));
  ApplyBatch(point.data(), 1, out.data());
  return out;
}

void RandomizedTransform::CellFromTransformed(const double* y,
                                              uint32_t* cell) const {
  const uint32_t cells = curve_.cells_per_dim();
  const size_t s = static_cast<size_t>(config_.output_dims);
  for (size_t j = 0; j < s; ++j) {
    const double frac = (y[j] - grid_lo_) / grid_extent_;
    const double idx = std::floor(frac * static_cast<double>(cells));
    cell[j] = static_cast<uint32_t>(
        Clamp(idx, 0.0, static_cast<double>(cells - 1)));
  }
}

std::vector<uint32_t> RandomizedTransform::Cell(
    const std::vector<double>& point) const {
  const std::vector<double> y = Apply(point);
  std::vector<uint32_t> cell(y.size());
  CellFromTransformed(y.data(), cell.data());
  return cell;
}

double RandomizedTransform::LinearizedPosition(
    const std::vector<double>& point) const {
  return curve_.Linearize(Cell(point));
}

void RandomizedTransform::LinearizedPositionBatch(const double* points,
                                                  size_t count,
                                                  double* out) const {
  const size_t s = static_cast<size_t>(config_.output_dims);
  std::vector<double> transformed(count * s);
  std::vector<uint32_t> cell(s);
  LinearizedPositionBatch(points, count, out, transformed.data(),
                          cell.data());
}

void RandomizedTransform::LinearizedPositionBatch(
    const double* points, size_t count, double* out, double* transformed_ws,
    uint32_t* cell_ws) const {
  const size_t s = static_cast<size_t>(config_.output_dims);
  ApplyBatch(points, count, transformed_ws);
  // Elementwise cell bucketing across the whole batch (bit-identical to
  // CellFromTransformed), reusing the transform workspace in place: the
  // transformed coordinates are dead once bucketed.
  const uint32_t cells = curve_.cells_per_dim();
  simd::CellIndexBatch(transformed_ws, count * s, grid_lo_, grid_extent_,
                       static_cast<double>(cells),
                       static_cast<double>(cells - 1), transformed_ws);
  for (size_t p = 0; p < count; ++p) {
    const double* idx = transformed_ws + p * s;
    for (size_t j = 0; j < s; ++j) {
      cell_ws[j] = static_cast<uint32_t>(idx[j]);
    }
    out[p] = curve_.Linearize(cell_ws);
  }
}

void RandomizedTransform::CellBoxFromTransformed(
    const double* y, double d, std::vector<uint32_t>* lo,
    std::vector<uint32_t>* hi) const {
  const uint32_t cells = curve_.cells_per_dim();
  const size_t s = static_cast<size_t>(config_.output_dims);
  const double radius = d * scale_;
  lo->resize(s);
  hi->resize(s);
  for (size_t j = 0; j < s; ++j) {
    const double lo_frac = (y[j] - radius - grid_lo_) / grid_extent_;
    const double hi_frac = (y[j] + radius - grid_lo_) / grid_extent_;
    (*lo)[j] = static_cast<uint32_t>(
        Clamp(std::floor(lo_frac * static_cast<double>(cells)), 0.0,
              static_cast<double>(cells - 1)));
    (*hi)[j] = static_cast<uint32_t>(
        Clamp(std::floor(hi_frac * static_cast<double>(cells)), 0.0,
              static_cast<double>(cells - 1)));
  }
}

void RandomizedTransform::CellBox(const std::vector<double>& point, double d,
                                  std::vector<uint32_t>* lo,
                                  std::vector<uint32_t>* hi) const {
  const std::vector<double> y = Apply(point);
  CellBoxFromTransformed(y.data(), d, lo, hi);
}

double RandomizedTransform::RangeHalfWidth(double d) const {
  const int s = config_.output_dims;
  // Radius d in the plan space becomes d * scale_ in the transformed space
  // (unit-vector projections preserve lengths). The Z-order position is a
  // volume-fraction coordinate over the grid box, so the hypersphere's
  // share of the box volume gives the interval width 2*delta.
  const double dt = d * scale_;
  const double sphere = HypersphereVolume(s, dt);
  const double box = std::pow(grid_extent_, static_cast<double>(s));
  return Clamp(0.5 * sphere / box, 0.0, 0.5);
}

TransformEnsemble::TransformEnsemble(const TransformConfig& config, int count,
                                     uint64_t seed) {
  PPC_CHECK(count >= 1);
  Rng rng(seed);
  transforms_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    transforms_.emplace_back(config, &rng);
  }
}

}  // namespace ppc
