#include "lsh/zorder.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/macros.h"
#include "lsh/simd.h"

namespace ppc {

ZOrderCurve::ZOrderCurve(int dimensions, int bits_per_dim)
    : dimensions_(dimensions), bits_per_dim_(bits_per_dim) {
  PPC_CHECK(dimensions >= 1 && bits_per_dim >= 1);
  PPC_CHECK_MSG(dimensions * bits_per_dim <= 62,
                "Morton code must fit in 62 bits");
  cpu_has_bmi2_ = simd::CpuSupportsBmi2();
  pdep_patterns_.resize(static_cast<size_t>(dimensions));
  for (int d = 0; d < dimensions; ++d) {
    uint64_t pattern = 0;
    for (int b = 0; b < bits_per_dim; ++b) {
      pattern |= uint64_t{1} << (b * dimensions + d);
    }
    pdep_patterns_[static_cast<size_t>(d)] = pattern;
  }
}

uint64_t ZOrderCurve::Interleave(const std::vector<uint32_t>& cells) const {
  PPC_DCHECK(static_cast<int>(cells.size()) == dimensions_);
  return Interleave(cells.data());
}

uint64_t ZOrderCurve::Interleave(const uint32_t* cells) const {
  const uint32_t mask = (bits_per_dim_ >= 32)
                            ? ~uint32_t{0}
                            : ((uint32_t{1} << bits_per_dim_) - 1);
  // pdep scatters each dimension's masked bits in one instruction; being
  // pure integer it is exactly the bit loop below, so it stays on even
  // when the FP kernels are forced scalar — except via PPC_DISABLE_AVX2,
  // which doubles as the "run the portable code" switch for tests.
  if (cpu_has_bmi2_ && simd::ActiveTier() == simd::Tier::kAvx2) {
    return simd::InterleavePdep(cells, dimensions_, mask,
                                pdep_patterns_.data());
  }
  uint64_t code = 0;
  // Bit b of dimension d lands at position b * dimensions + d, so the most
  // significant interleaved bits come from the most significant coordinate
  // bits — the property that makes the curve locality-preserving.
  for (int b = 0; b < bits_per_dim_; ++b) {
    for (int d = 0; d < dimensions_; ++d) {
      const uint64_t bit = (cells[static_cast<size_t>(d)] & mask) >> b & 1u;
      code |= bit << (b * dimensions_ + d);
    }
  }
  return code;
}

std::vector<uint32_t> ZOrderCurve::Deinterleave(uint64_t code) const {
  std::vector<uint32_t> cells(static_cast<size_t>(dimensions_), 0);
  for (int b = 0; b < bits_per_dim_; ++b) {
    for (int d = 0; d < dimensions_; ++d) {
      const uint32_t bit =
          static_cast<uint32_t>(code >> (b * dimensions_ + d) & 1u);
      cells[static_cast<size_t>(d)] |= bit << b;
    }
  }
  return cells;
}

double ZOrderCurve::Linearize(const std::vector<uint32_t>& cells) const {
  PPC_DCHECK(static_cast<int>(cells.size()) == dimensions_);
  return Linearize(cells.data());
}

double ZOrderCurve::Linearize(const uint32_t* cells) const {
  const double denom = std::ldexp(1.0, total_bits());
  return static_cast<double>(Interleave(cells)) / denom;
}

namespace {

/// Recursive quadtree descent: `g` is the next interleaved bit to fix
/// (counting down from total_bits; bit g-1 belongs to dimension
/// (g-1) % dims and coordinate bit (g-1) / dims). `node_lo`/`node_hi`
/// bound the node's cell prefix box; z0 is the node's first curve code.
void Descend(int g, int dims, uint64_t z0, std::vector<uint32_t>& node_lo,
             std::vector<uint32_t>& node_hi,
             const std::vector<uint32_t>& box_lo,
             const std::vector<uint32_t>& box_hi,
             std::vector<std::pair<uint64_t, uint64_t>>* out) {
  // Disjoint?
  for (int d = 0; d < dims; ++d) {
    const size_t i = static_cast<size_t>(d);
    if (node_hi[i] < box_lo[i] || node_lo[i] > box_hi[i]) return;
  }
  // Fully contained?
  bool contained = true;
  for (int d = 0; d < dims; ++d) {
    const size_t i = static_cast<size_t>(d);
    if (node_lo[i] < box_lo[i] || node_hi[i] > box_hi[i]) {
      contained = false;
      break;
    }
  }
  if (contained || g == 0) {
    const uint64_t span = uint64_t{1} << g;
    if (!out->empty() && out->back().second == z0) {
      out->back().second = z0 + span;  // coalesce adjacent runs
    } else {
      out->emplace_back(z0, z0 + span);
    }
    return;
  }

  // Split on interleaved bit g-1: dimension d, coordinate bit cb.
  const int bit = g - 1;
  const int d = bit % dims;
  const int cb = bit / dims;
  const size_t i = static_cast<size_t>(d);
  const uint32_t mid_mask = uint32_t{1} << cb;
  const uint32_t save_lo = node_lo[i];
  const uint32_t save_hi = node_hi[i];

  // In this node, dim i's bits above cb are fixed (shared prefix in
  // save_lo/save_hi); bits cb and below run 0..1 freely.
  // Child 0: coordinate bit cb = 0 -> range [save_lo, prefix|0|1...1].
  node_hi[i] = save_lo | (mid_mask - 1);
  Descend(bit, dims, z0, node_lo, node_hi, box_lo, box_hi, out);
  node_hi[i] = save_hi;

  // Child 1: coordinate bit cb = 1 -> range [prefix|1|0...0, save_hi].
  node_lo[i] = save_lo | mid_mask;
  Descend(bit, dims, z0 + (uint64_t{1} << bit), node_lo, node_hi, box_lo,
          box_hi, out);
  node_lo[i] = save_lo;
}

}  // namespace

std::vector<ZInterval> ZOrderCurve::DecomposeBox(
    const std::vector<uint32_t>& lo, const std::vector<uint32_t>& hi,
    size_t max_intervals) const {
  PPC_CHECK(static_cast<int>(lo.size()) == dimensions_ &&
            static_cast<int>(hi.size()) == dimensions_);
  PPC_CHECK(max_intervals >= 1);
  const uint32_t mask = cells_per_dim() - 1;
  std::vector<uint32_t> box_lo(lo), box_hi(hi);
  for (size_t d = 0; d < box_lo.size(); ++d) {
    box_lo[d] &= mask;
    box_hi[d] &= mask;
    if (box_lo[d] > box_hi[d]) std::swap(box_lo[d], box_hi[d]);
  }
  std::vector<uint32_t> node_lo(static_cast<size_t>(dimensions_), 0);
  std::vector<uint32_t> node_hi(static_cast<size_t>(dimensions_), mask);
  std::vector<std::pair<uint64_t, uint64_t>> runs;
  Descend(total_bits(), dimensions_, 0, node_lo, node_hi, box_lo, box_hi,
          &runs);

  // Merge the smallest gaps until within budget (conservative
  // over-coverage keeps every box cell queried).
  while (runs.size() > max_intervals) {
    size_t best = 0;
    uint64_t best_gap = ~uint64_t{0};
    for (size_t i = 0; i + 1 < runs.size(); ++i) {
      const uint64_t gap = runs[i + 1].first - runs[i].second;
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    runs[best].second = runs[best + 1].second;
    runs.erase(runs.begin() + static_cast<ptrdiff_t>(best) + 1);
  }

  const double denom = std::ldexp(1.0, total_bits());
  std::vector<ZInterval> intervals;
  intervals.reserve(runs.size());
  for (const auto& [z0, z1] : runs) {
    intervals.push_back({static_cast<double>(z0) / denom,
                         static_cast<double>(z1) / denom});
  }
  return intervals;
}

}  // namespace ppc
