#ifndef PPC_LSH_SIMD_H_
#define PPC_LSH_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace ppc {
namespace simd {

/// Runtime-dispatched vector kernels for the two measured hot spots of the
/// serving path: the LSH projection (RandomizedTransform::ApplyBatch) and
/// the histogram range-count probe (PlanSynopsis::BatchTransformCounts).
///
/// Contract: every AVX2 kernel is BIT-IDENTICAL to its scalar counterpart
/// on all inputs, including NaNs and signed zeros. The AVX2 kernels get
/// there by vectorizing ACROSS points/buckets — each SIMD lane performs
/// exactly the scalar operation sequence, in the scalar order — and by
/// never using FMA in an accumulation (a fused multiply-add rounds once
/// where the scalar code rounds twice). The scalar kernels are both the
/// portable fallback and the oracle the bit-identity tests compare
/// against; the build keeps -ffp-contract at its strict-ISO default (off)
/// so the compiler cannot fuse the scalar side either.
///
/// Dispatch picks AVX2 when the CPU reports AVX2+FMA and the environment
/// variable PPC_DISABLE_AVX2 is unset (or "0"); anything else falls back
/// to scalar. The choice is made once and cached in an atomic; tests that
/// change the environment mid-process call ReinitializeDispatchForTest().

enum class Tier {
  kScalar = 0,
  kAvx2 = 1,
};

/// The tier the dispatched entry points will use (cached; cheap).
Tier ActiveTier();

/// "scalar" / "avx2" — recorded in benchmark JSON so the perf trajectory
/// distinguishes kernel wins from IO wins.
const char* TierName(Tier tier);

/// True iff the CPU supports the AVX2+FMA kernels (env override ignored).
bool CpuSupportsAvx2();

/// Drops the cached dispatch decision so the next ActiveTier() re-reads
/// the CPU and PPC_DISABLE_AVX2. Test-only; not thread-safe against
/// concurrent kernel use.
void ReinitializeDispatchForTest();

/// The LSH projection kernel behind RandomizedTransform::ApplyBatch.
/// `projections` is the output_dims x input_dims matrix (row-major),
/// `points` holds `count` row-major input_dims-dimensional points, and the
/// transformed coordinates land row-major in `out` (count * output_dims
/// doubles). Per point p and output j:
///   out[p*s + j] = sum_i projections[j*r + i] * (points[p*r + i] - 0.5)
///                  * scale  + shifts[j]
/// with left-to-right accumulation over i.
void ApplyBatch(const double* projections, const double* shifts, double scale,
                size_t input_dims, size_t output_dims, const double* points,
                size_t count, double* out);
void ApplyBatchScalar(const double* projections, const double* shifts,
                      double scale, size_t input_dims, size_t output_dims,
                      const double* points, size_t count, double* out);
/// Requires CpuSupportsAvx2(); exposed for side-by-side identity tests.
void ApplyBatchAvx2(const double* projections, const double* shifts,
                    double scale, size_t input_dims, size_t output_dims,
                    const double* points, size_t count, double* out);

/// The histogram range-count probe kernel behind grouped batch counting:
/// StreamingHistogram::EstimateCount(lo, hi) recomputed from flat probe
/// arrays (see StreamingHistogram::ExportProbe) instead of the bucket
/// structs, summing per-bucket contributions in bucket order. `left`,
/// `right`, `count`, `centroid` each hold `buckets` entries.
double HistogramRangeCount(const double* left, const double* right,
                           const double* count, const double* centroid,
                           size_t buckets, double lo, double hi);
double HistogramRangeCountScalar(const double* left, const double* right,
                                 const double* count, const double* centroid,
                                 size_t buckets, double lo, double hi);
/// Requires CpuSupportsAvx2(); exposed for side-by-side identity tests.
double HistogramRangeCountAvx2(const double* left, const double* right,
                               const double* count, const double* centroid,
                               size_t buckets, double lo, double hi);

/// The combined count + cost probe kernel behind the batched cost pass:
/// StreamingHistogram::EstimateCount(lo, hi) and the cost-sum side of
/// EstimateAverageCost(lo, hi) in one sweep over the flat probe arrays
/// (ExportProbe + ExportProbeCosts). Per bucket the coverage fraction is
///   frac = width <= 0 ? (centroid in [lo,hi] ? 1.0 : 0.0)
///                     : max(0, min(hi,right) - max(lo,left)) / width
/// and the kernel accumulates count[i]*frac into *count_out and
/// cost[i]*frac into *cost_out, both in bucket order. *count_out is
/// bit-identical to EstimateCount (x*1.0 is exact; the out-of-range
/// x*0.0 = +0.0 terms the frac form adds cannot change a non-negative
/// sum) and cost_out/count_out is bit-identical to EstimateAverageCost.
void HistogramRangeCountCost(const double* left, const double* right,
                             const double* count, const double* cost,
                             const double* centroid, size_t buckets,
                             double lo, double hi, double* count_out,
                             double* cost_out);
void HistogramRangeCountCostScalar(const double* left, const double* right,
                                   const double* count, const double* cost,
                                   const double* centroid, size_t buckets,
                                   double lo, double hi, double* count_out,
                                   double* cost_out);
/// Requires CpuSupportsAvx2(); exposed for side-by-side identity tests.
void HistogramRangeCountCostAvx2(const double* left, const double* right,
                                 const double* count, const double* cost,
                                 const double* centroid, size_t buckets,
                                 double lo, double hi, double* count_out,
                                 double* cost_out);

/// Many-query variant of HistogramRangeCount for the serving batch path:
/// `bounds` holds `queries` (lo, hi) pairs (bounds[2q], bounds[2q + 1] —
/// the in-memory layout of a ZInterval array) and out[q] receives the
/// range count of query q against one shared probe table. The AVX2 tier
/// vectorizes ACROSS QUERIES — one query per lane, buckets swept
/// sequentially with broadcast probe values — so every lane runs the
/// exact scalar accumulation sequence and bit-identity is structural.
/// Lanes with inverted or NaN bounds are masked to the scalar's 0.0.
void HistogramRangeCountMany(const double* left, const double* right,
                             const double* count, const double* centroid,
                             size_t buckets, const double* bounds,
                             size_t queries, double* out);
void HistogramRangeCountManyScalar(const double* left, const double* right,
                                   const double* count,
                                   const double* centroid, size_t buckets,
                                   const double* bounds, size_t queries,
                                   double* out);
/// Requires CpuSupportsAvx2(); exposed for side-by-side identity tests.
void HistogramRangeCountManyAvx2(const double* left, const double* right,
                                 const double* count, const double* centroid,
                                 size_t buckets, const double* bounds,
                                 size_t queries, double* out);

/// Elementwise grid-cell bucketing behind
/// RandomizedTransform::LinearizedPositionBatch:
///   out[k] = Clamp(floor((y[k] - grid_lo) / grid_extent * cells),
///                  0.0, max_index)
/// kept in the double domain (the caller performs the uint32 cast) so the
/// AVX2 tier — sub/div/mul/floor and clamp via maxpd/minpd with operand
/// order matching std::max/std::min — is bit-identical to the scalar
/// expression, NaN propagation included. `out` may alias `y`.
void CellIndexBatch(const double* y, size_t n, double grid_lo,
                    double grid_extent, double cells, double max_index,
                    double* out);
void CellIndexBatchScalar(const double* y, size_t n, double grid_lo,
                          double grid_extent, double cells, double max_index,
                          double* out);
/// Requires CpuSupportsAvx2(); exposed for side-by-side identity tests.
void CellIndexBatchAvx2(const double* y, size_t n, double grid_lo,
                        double grid_extent, double cells, double max_index,
                        double* out);

/// Many-query variant of HistogramRangeCountCost: `bounds` holds
/// `queries` (lo, hi) pairs and query q's count-sum and cost-sum land in
/// counts_out[q] / costs_out[q]. Vectorized across queries like
/// HistogramRangeCountMany, with the same per-lane bit-identity to the
/// single-query scalar kernel.
void HistogramRangeCountCostMany(const double* left, const double* right,
                                 const double* count, const double* cost,
                                 const double* centroid, size_t buckets,
                                 const double* bounds, size_t queries,
                                 double* counts_out, double* costs_out);
void HistogramRangeCountCostManyScalar(const double* left,
                                       const double* right,
                                       const double* count,
                                       const double* cost,
                                       const double* centroid, size_t buckets,
                                       const double* bounds, size_t queries,
                                       double* counts_out, double* costs_out);
/// Requires CpuSupportsAvx2(); exposed for side-by-side identity tests.
void HistogramRangeCountCostManyAvx2(const double* left, const double* right,
                                     const double* count, const double* cost,
                                     const double* centroid, size_t buckets,
                                     const double* bounds, size_t queries,
                                     double* counts_out, double* costs_out);

/// True iff the CPU supports the BMI2 pdep Morton-interleave fast path.
bool CpuSupportsBmi2();

/// Morton interleave via one pdep per dimension: patterns[d] has a bit at
/// position b * dims + d for each b < bits_per_dim, so
/// _pdep_u64(cells[d] & mask, patterns[d]) scatters dimension d's bits to
/// their interleaved positions. Pure integer — identical to the scalar
/// bit loop on every input. Requires CpuSupportsBmi2().
uint64_t InterleavePdep(const uint32_t* cells, int dims, uint32_t mask,
                        const uint64_t* patterns);

}  // namespace simd
}  // namespace ppc

#endif  // PPC_LSH_SIMD_H_
