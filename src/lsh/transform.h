#ifndef PPC_LSH_TRANSFORM_H_
#define PPC_LSH_TRANSFORM_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "lsh/zorder.h"

namespace ppc {

/// Configuration of one randomized locality-preserving transform
/// (paper Sec. IV-B, after Tao et al.).
struct TransformConfig {
  /// Plan-space dimensionality r.
  int input_dims = 2;
  /// Intermediate-space dimensionality s. The paper uses s = r at low
  /// dimensions and s << r when dimensionality reduction is needed.
  int output_dims = 2;
  /// Grid resolution per axis as a power of two: Delta = 2^bits_per_dim.
  int bits_per_dim = 5;
  /// Per-dimension plan-space ranges [input_lo[i], input_hi[i]] that the
  /// transform normalizes onto the unit cube before the paper's pipeline
  /// runs. Empty means the identity fit ([0,1] per dimension) — the
  /// paper's fixed construction, bit-identical to the historical
  /// behavior. A retuning refit (DESIGN.md §17) zooms these onto the
  /// span actually covered by recent queries; the normalization folds
  /// into the projection matrix and shifts, so the SIMD kernels are
  /// untouched and the query radius is interpreted in range-relative
  /// units (a fitted transform behaves exactly like the paper's over the
  /// normalized workload).
  std::vector<double> input_lo;
  std::vector<double> input_hi;
};

/// Returns the paper's default projection dimensionality for a plan space
/// of `input_dims` dimensions: s = r for r <= 3, s = 3 above.
int DefaultOutputDims(int input_dims);

/// One randomized locality-preserving geometrical transformation of the
/// plan space (Sec. IV-B):
///
///  1. translate points by (-0.5, ..., -0.5) and scale by 2*lambda/sqrt(r),
///     where lambda is the radius of the hypersphere S whose volume equals
///     that of [-1,1]^r, placing the hypercube's vertices on S;
///  2. project onto s random unit vectors a_1..a_s (components drawn from a
///     normal distribution, then normalized);
///  3. shift each projection by b_j drawn uniformly from one grid-cell
///     width — "a much smaller interval" than Tao et al.'s, enough to
///     randomize bucket boundaries without breaking plan-choice
///     predictability;
///  4. bucket each coordinate on a fixed grid and linearize the cell with a
///     Z-order curve.
class RandomizedTransform {
 public:
  /// Draws the random projection vectors and shifts from `rng`.
  RandomizedTransform(const TransformConfig& config, Rng* rng);

  /// Steps 1-2-3: the transformed s-dimensional coordinates of `point`.
  /// Delegates to ApplyBatch with a batch of one, so scalar and batched
  /// callers share one arithmetic path and agree bit-for-bit.
  std::vector<double> Apply(const std::vector<double>& point) const;

  /// Steps 1-2-3 for `count` points stored contiguously row-major in
  /// `points` (point p is points[p*r .. p*r+r)). Writes the transformed
  /// coordinates row-major into `out` (point p at out[p*s .. p*s+s)); the
  /// caller provides count*s doubles. This is the matrix-times-batch
  /// kernel of the serving fast path: one pass over the s x r projection
  /// matrix per point, contiguous reads and writes, no per-point
  /// allocation. The per-coordinate accumulation order is identical to
  /// the historical scalar loop, which is what makes batched predictions
  /// bit-identical to scalar ones.
  void ApplyBatch(const double* points, size_t count, double* out) const;

  /// Step 4 cell coordinates of `point` on the grid.
  std::vector<uint32_t> Cell(const std::vector<double>& point) const;

  /// Step 4 from already-transformed coordinates `y` (s doubles), writing
  /// the cell into `cell` (s entries). Lets batched callers reuse one
  /// ApplyBatch result for both cell and cell-box computation.
  void CellFromTransformed(const double* y, uint32_t* cell) const;

  /// Grid-cell index box covered by the transformed ball of plan-space
  /// radius `d` around `point` (per-dimension inclusive ranges, clamped to
  /// the grid). Feed to ZOrderCurve::DecomposeBox for exact Z-range
  /// querying.
  void CellBox(const std::vector<double>& point, double d,
               std::vector<uint32_t>* lo, std::vector<uint32_t>* hi) const;

  /// CellBox from already-transformed coordinates `y` (s doubles).
  void CellBoxFromTransformed(const double* y, double d,
                              std::vector<uint32_t>* lo,
                              std::vector<uint32_t>* hi) const;

  /// Z-order-linearized grid position of `point`, in [0, 1).
  double LinearizedPosition(const std::vector<double>& point) const;

  /// Z-order positions of `count` row-major points (layout as in
  /// ApplyBatch), written to `out[0 .. count)`. One transform pass, then
  /// per-point cell bucketing and Z-order linearization.
  void LinearizedPositionBatch(const double* points, size_t count,
                               double* out) const;

  /// Allocation-free variant for the serving fast path: the caller
  /// provides the transform workspace (`transformed_ws`, count *
  /// output_dims doubles) and the cell scratch (`cell_ws`, output_dims
  /// entries) — typically from a per-request arena.
  void LinearizedPositionBatch(const double* points, size_t count,
                               double* out, double* transformed_ws,
                               uint32_t* cell_ws) const;

  /// Factor by which the transform scales Euclidean distances (projections
  /// onto unit vectors preserve lengths, so this is the step-1 scale).
  double distance_scale() const { return scale_; }

  /// Half-width, in normalized Z-order position, of the range covering the
  /// same volume fraction as a plan-space hypersphere of radius `d`
  /// (Sec. IV-C: "2*delta is equal to the volume of a hypersphere with
  /// radius d"), expressed relative to the grid's bounding box.
  double RangeHalfWidth(double d) const;

  const TransformConfig& config() const { return config_; }
  const ZOrderCurve& curve() const { return curve_; }
  /// Grid lower bound / extent along each transformed axis.
  double grid_lo() const { return grid_lo_; }
  double grid_extent() const { return grid_extent_; }

 private:
  TransformConfig config_;
  ZOrderCurve curve_;
  double scale_;        // step-1 distance scale
  double grid_lo_;      // transformed-axis grid origin
  double grid_extent_;  // transformed-axis grid span
  /// The s x r projection matrix, row-major (row j is unit vector a_j).
  /// Stored flat so ApplyBatch streams it without pointer chasing.
  std::vector<double> projections_;
  std::vector<double> shifts_;  // s per-axis shifts
};

/// An ensemble of t independently randomized transforms sharing one
/// configuration — the "t randomized transformations producing t
/// intermediate data spaces I_1..I_t" of Sec. IV-B.
class TransformEnsemble {
 public:
  TransformEnsemble(const TransformConfig& config, int count, uint64_t seed);

  const std::vector<RandomizedTransform>& transforms() const {
    return transforms_;
  }
  size_t size() const { return transforms_.size(); }
  const RandomizedTransform& operator[](size_t i) const {
    return transforms_[i];
  }

 private:
  std::vector<RandomizedTransform> transforms_;
};

}  // namespace ppc

#endif  // PPC_LSH_TRANSFORM_H_
