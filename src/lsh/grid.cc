#include "lsh/grid.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/math_utils.h"

namespace ppc {

PlanGrid::PlanGrid(int dimensions, uint32_t cells_per_dim, double lo,
                   double extent)
    : dimensions_(dimensions),
      cells_per_dim_(cells_per_dim),
      lo_(lo),
      extent_(extent),
      cell_width_(extent / static_cast<double>(cells_per_dim)) {
  PPC_CHECK(dimensions >= 1 && cells_per_dim >= 1 && extent > 0.0);
}

uint64_t PlanGrid::CellCode(const std::vector<uint32_t>& cell) const {
  uint64_t code = 0;
  for (int d = 0; d < dimensions_; ++d) {
    code = code * cells_per_dim_ + cell[static_cast<size_t>(d)];
  }
  return code;
}

std::vector<uint32_t> PlanGrid::CellOf(
    const std::vector<double>& coords) const {
  PPC_DCHECK(static_cast<int>(coords.size()) == dimensions_);
  std::vector<uint32_t> cell(coords.size());
  for (size_t d = 0; d < coords.size(); ++d) {
    const double idx = std::floor((coords[d] - lo_) / cell_width_);
    cell[d] = static_cast<uint32_t>(
        Clamp(idx, 0.0, static_cast<double>(cells_per_dim_ - 1)));
  }
  return cell;
}

uint64_t PlanGrid::total_cells() const {
  uint64_t total = 1;
  for (int d = 0; d < dimensions_; ++d) total *= cells_per_dim_;
  return total;
}

void PlanGrid::Insert(const std::vector<double>& coords, PlanId plan,
                      double cost) {
  PlanAggregate& agg = cells_[CellCode(CellOf(coords))][plan];
  agg.count += 1.0;
  agg.cost_sum += cost;
  ++plans_[plan];
  ++total_count_;
}

std::map<PlanId, PlanAggregate> PlanGrid::QueryBox(
    const std::vector<double>& coords, double radius) const {
  PPC_DCHECK(static_cast<int>(coords.size()) == dimensions_);
  // Cell index range intersecting the query box, per dimension.
  std::vector<uint32_t> lo_cell(coords.size()), hi_cell(coords.size());
  for (size_t d = 0; d < coords.size(); ++d) {
    const double lo_idx = std::floor((coords[d] - radius - lo_) / cell_width_);
    const double hi_idx = std::floor((coords[d] + radius - lo_) / cell_width_);
    lo_cell[d] = static_cast<uint32_t>(
        Clamp(lo_idx, 0.0, static_cast<double>(cells_per_dim_ - 1)));
    hi_cell[d] = static_cast<uint32_t>(
        Clamp(hi_idx, 0.0, static_cast<double>(cells_per_dim_ - 1)));
  }

  std::map<PlanId, PlanAggregate> result;
  std::vector<uint32_t> cell = lo_cell;
  for (;;) {
    // Volume fraction of this cell covered by the query box.
    double fraction = 1.0;
    for (size_t d = 0; d < cell.size(); ++d) {
      const double cell_lo = lo_ + cell_width_ * static_cast<double>(cell[d]);
      const double cell_hi = cell_lo + cell_width_;
      const double overlap = std::max(
          0.0, std::min(coords[d] + radius, cell_hi) -
                   std::max(coords[d] - radius, cell_lo));
      fraction *= overlap / cell_width_;
    }
    if (fraction > 0.0) {
      auto it = cells_.find(CellCode(cell));
      if (it != cells_.end()) {
        for (const auto& [plan, agg] : it->second) {
          PlanAggregate& out = result[plan];
          out.count += agg.count * fraction;
          out.cost_sum += agg.cost_sum * fraction;
        }
      }
    }
    // Advance the multi-dimensional counter.
    size_t d = 0;
    for (; d < cell.size(); ++d) {
      if (cell[d] < hi_cell[d]) {
        ++cell[d];
        break;
      }
      cell[d] = lo_cell[d];
    }
    if (d == cell.size()) break;
  }
  return result;
}

}  // namespace ppc
