#ifndef PPC_LSH_GRID_H_
#define PPC_LSH_GRID_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "plan/fingerprint.h"

namespace ppc {

/// Per-plan count and cost aggregates within one region.
struct PlanAggregate {
  double count = 0.0;
  double cost_sum = 0.0;

  double AverageCost() const { return count > 0.0 ? cost_sum / count : 0.0; }
};

/// A fixed-resolution grid over a box domain, recording per-cell, per-plan
/// sample counts and cost sums.
///
/// This is the storage behind the NAIVE algorithm (one grid over the plan
/// space itself) and APPROXIMATE-LSH (one grid per randomized intermediate
/// space). Space accounting follows the paper's Table I: each (plan, cell)
/// slot charges 8 bytes — a 32-bit count plus a 32-bit average cost.
class PlanGrid {
 public:
  /// A grid over [lo, lo+extent]^dimensions with `cells_per_dim` cells per
  /// axis.
  PlanGrid(int dimensions, uint32_t cells_per_dim, double lo, double extent);

  /// Records one sample with coordinates in the grid's domain.
  void Insert(const std::vector<double>& coords, PlanId plan, double cost);

  /// Per-plan aggregates over the box [coords - radius, coords + radius]
  /// (intersected with the domain). Partially-overlapped cells contribute
  /// proportionally to the overlapped volume fraction.
  std::map<PlanId, PlanAggregate> QueryBox(const std::vector<double>& coords,
                                           double radius) const;

  /// Number of distinct plans observed.
  size_t plan_count() const { return plans_.size(); }
  /// Total cells in the grid (Table I's b_g).
  uint64_t total_cells() const;
  /// Samples inserted so far.
  size_t total_count() const { return total_count_; }
  /// Table I space accounting: n * b_g * 8 bytes.
  uint64_t SpaceBytes() const { return plan_count() * total_cells() * 8; }

  int dimensions() const { return dimensions_; }
  uint32_t cells_per_dim() const { return cells_per_dim_; }

 private:
  uint64_t CellCode(const std::vector<uint32_t>& cell) const;
  std::vector<uint32_t> CellOf(const std::vector<double>& coords) const;

  int dimensions_;
  uint32_t cells_per_dim_;
  double lo_;
  double extent_;
  double cell_width_;
  /// cell code -> plan -> aggregate. Sparse storage; the space *accounting*
  /// is dense per the paper's formula.
  std::unordered_map<uint64_t, std::map<PlanId, PlanAggregate>> cells_;
  std::map<PlanId, size_t> plans_;
  size_t total_count_ = 0;
};

}  // namespace ppc

#endif  // PPC_LSH_GRID_H_
