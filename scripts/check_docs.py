#!/usr/bin/env python3
"""Documentation checks, run by scripts/check.sh and CI.

1. Markdown link check: every relative link in the repo's *.md files
   (root and docs/) must point at a file or directory that exists.
   External links (http/https/mailto) are not fetched.
2. Doc-presence check: every class/struct declared at namespace scope in
   the public headers of src/ppc/, src/server/ and src/workload/ must
   carry a Doxygen `///` comment immediately above it.

Exits non-zero with one line per violation.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Namespace-scope type declarations: no indentation, an optional
# template line is handled by look-behind over preceding lines.
DECL_RE = re.compile(r"^(?:class|struct)\s+([A-Za-z_]\w*)\s*(?::|\{|$)")

# Fenced code blocks may contain example links / declarations; skip them.
FENCE_RE = re.compile(r"^\s*```")


# Verbatim retrieval artifacts (paper text / exemplar snippets) carry
# image references from their source documents; they are reference
# material, not repo documentation.
EXCLUDED = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}


def markdown_files():
    files = [f for f in os.listdir(REPO)
             if f.endswith(".md") and f not in EXCLUDED]
    docs = os.path.join(REPO, "docs")
    if os.path.isdir(docs):
        files += [os.path.join("docs", f) for f in os.listdir(docs)
                  if f.endswith(".md")]
    return sorted(files)


def check_markdown_links():
    errors = []
    for rel in markdown_files():
        path = os.path.join(REPO, rel)
        base = os.path.dirname(path)
        in_fence = False
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                for target in LINK_RE.findall(line):
                    if target.startswith(("http://", "https://", "mailto:")):
                        continue
                    target = target.split("#")[0]
                    if not target:  # pure intra-document anchor
                        continue
                    if not os.path.exists(os.path.join(base, target)):
                        errors.append(
                            f"{rel}:{lineno}: broken link -> {target}")
    return errors


def public_headers():
    headers = []
    for module in ("src/ppc", "src/server", "src/workload"):
        directory = os.path.join(REPO, module)
        headers += [os.path.join(module, f)
                    for f in sorted(os.listdir(directory))
                    if f.endswith(".h")]
    return headers


def check_doc_presence():
    errors = []
    for rel in public_headers():
        with open(os.path.join(REPO, rel), encoding="utf-8") as f:
            lines = f.read().splitlines()
        for i, line in enumerate(lines):
            match = DECL_RE.match(line)
            if not match:
                continue
            # Walk upward over template<> lines and macros to the line
            # that should hold the trailing `///` comment.
            j = i - 1
            while j >= 0 and (lines[j].startswith("template")
                              or lines[j].startswith("PPC_")):
                j -= 1
            if j < 0 or not lines[j].lstrip().startswith("///"):
                errors.append(
                    f"{rel}:{i + 1}: public type '{match.group(1)}' "
                    "lacks a /// doc comment")
    return errors


def main():
    errors = check_markdown_links() + check_doc_presence()
    for error in errors:
        print(error)
    if errors:
        print(f"{len(errors)} documentation check failure(s)")
        return 1
    print("documentation checks ok "
          f"({len(markdown_files())} markdown files, "
          f"{len(public_headers())} public headers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
