#!/usr/bin/env bash
# Full verification sweep:
#   1. documentation checks (markdown links, header doc presence),
#   2. plain build + the entire test suite (the tier-1 gate), then a
#      forced-scalar leg (PPC_DISABLE_AVX2=1) over the SIMD-dispatching
#      tests so the portable kernels stay exercised,
#   3. retune smoke: bench_drift_recovery end to end, asserting the
#      retuning arm refits and the generation handoff serves gap-free,
#   4. workload-zoo smoke: bench_workload_zoo drives all four named
#      scenarios against live servers, asserting determinism, zero
#      failures, a diurnal shed-ladder excursion and a drift refit,
#   5. cluster smoke test (router + 2 shards as real processes, with a
#      wire-level warm start),
#   6. cluster failover smoke: bench_cluster_failover SIGKILLs a shard
#      out of a 3-shard cluster mid-load and asserts availability,
#      zero wrong answers and an automatic warm rejoin,
#   7. the JSON-emitting benches + validation of every BENCH_*.json,
#   8. server smoke test (live TCP round-trips + clean shutdown),
#   9. ASan build + the entire test suite,
#  10. TSan build + the concurrency, metrics, server and router tests,
#  11. chaos stage: the randomized fault-injection tests (ctest label
#      `chaos`) under both sanitizers.
# The deterministic ctest stages exclude the chaos label (-LE chaos) so
# their runtime stays flat; the chaos stage runs it explicitly (-L chaos).
# Usage: scripts/check.sh [--skip-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_SAN=0
[ "${1:-}" = "--skip-sanitizers" ] && SKIP_SAN=1

echo "==> documentation checks (markdown links, header doc comments)"
python3 scripts/check_docs.py

echo "==> plain build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -LE chaos -j "$JOBS")

echo "==> forced-scalar leg (PPC_DISABLE_AVX2=1): kernels, transform, predictor"
# Reruns every test that exercises the SIMD dispatch with the AVX2 tier
# disabled, so the portable scalar kernels stay a first-class code path
# (they are the bit-identity oracle and the fallback on older CPUs).
(cd build && PPC_DISABLE_AVX2=1 \
  ctest --output-on-failure -LE chaos \
    -R 'Simd|Transform|Zorder|LshHistograms|PlanSynopsis|Predictor|Retune|Generation' \
    -j "$JOBS")

echo "==> retune smoke (drift-triggered refit + warm generation handoff)"
# bench_drift_recovery runs the retuning-on vs. -off arms end to end:
# recall-collapse trigger, background refit, generation handoff under a
# live PREDICT prober. The zero-serving-gap claim and the fact that the
# retuning arm actually refit are asserted, not just recorded.
(cd build && timeout 300 ./bench/bench_drift_recovery >/dev/null && \
  python3 -c "
import json
d = json.load(open('BENCH_drift_recovery.json'))
assert d['zero_serving_gap'] is True, 'probe failures during handoff'
assert d['retune_on']['refits'] >= 1, 'retuning arm never refit'
")
echo "    drift-triggered refit + zero-gap handoff ok"

echo "==> workload-zoo smoke (four named scenarios against live servers)"
# bench_workload_zoo replays every scenario in the zoo (zipf_tenants,
# diurnal_flash, correlated_predicates, adversarial_drift) against a
# live PlanServer. The bench itself asserts stream determinism and zero
# request failures; the JSON checks below re-assert the two behavioural
# claims docs/WORKLOADS.md makes: diurnal_flash climbs the shed ladder,
# adversarial_drift triggers at least one retune refit.
(cd build && timeout 600 ./bench/bench_workload_zoo >/dev/null && \
  python3 -c "
import json
d = json.load(open('BENCH_workload_zoo.json'))
by_name = {s['scenario']: s for s in d['scenarios']}
assert set(by_name) == {'zipf_tenants', 'diurnal_flash',
                        'correlated_predicates', 'adversarial_drift'}
for s in by_name.values():
    assert s['deterministic'] is True, s['scenario'] + ' not deterministic'
    assert s['failures'] == 0, s['scenario'] + ' had request failures'
shed = by_name['diurnal_flash']['shed']
assert shed['enter_no_microbatch'] >= 1, 'flash never entered shed rung 1'
assert shed['enter_abstain'] >= 1, 'flash never entered shed rung 2'
assert by_name['adversarial_drift']['retune']['refits'] >= 1, \
    'drift scenario never refit'
")
echo "    four scenarios deterministic, shed ladder + drift refit ok"

echo "==> cluster smoke test (ppc_router + 2 ppc_server shards, real processes)"
# bench_cluster_throughput fork/execs the ppc_server and ppc_router
# binaries, waits on their LISTENING readiness lines, warm-starts the
# second shard from the first over SNAPSHOT, and asserts the joiner
# answers identically to the leader (shard-direct adoption probe) and
# serves its templates at the steady-phase hit rate — a non-zero exit
# or a hang fails the sweep. Its BENCH_cluster_throughput.json is
# validated below.
(cd build && timeout 180 ./bench/bench_cluster_throughput >/dev/null)
echo "    warm-started join + routed round-trips + clean teardown ok"

echo "==> cluster failover smoke (SIGKILL a shard, failover + warm rejoin)"
# bench_cluster_failover runs 3 shards behind the router with the health
# model on, SIGKILLs the busiest shard mid-load, and respawns it cold.
# The bench itself asserts the robustness claims; the JSON checks below
# re-assert them from the recorded artifact (DESIGN.md §18).
(cd build && timeout 300 ./bench/bench_cluster_failover >/dev/null && \
  python3 -c "
import json
d = json.load(open('BENCH_cluster_failover.json'))
assert d['availability_excluding_detection'] >= 0.99, 'availability < 99%'
assert d['wrong_answers'] == 0, 'a shard contradicted ground truth'
assert d['failed_over_executes'] >= 1, 'no EXECUTE was FAILED_OVER-flagged'
assert d['rejoin']['auto_rejoined'] is True, 'shard never rejoined'
assert d['rejoin']['hit_rate_gap'] <= 0.05, 'rejoined shard came back cold'
")
echo "    failover availability + zero wrong answers + warm rejoin ok"

echo "==> machine-readable bench output (BENCH_*.json) is valid JSON"
(
  cd build
  ./bench/bench_concurrent_throughput >/dev/null
  ./bench/bench_drift_detection >/dev/null
  # bench_drift_recovery and bench_workload_zoo already ran in their
  # smoke stages above; their BENCH_*.json are picked up by the loop
  # below.
  ./bench/bench_fig13_runtime >/dev/null
  ./bench/bench_server_throughput >/dev/null
  for f in BENCH_*.json; do
    if command -v python3 >/dev/null; then
      python3 -m json.tool "$f" >/dev/null || { echo "invalid JSON: $f"; exit 1; }
    else
      jq . "$f" >/dev/null || { echo "invalid JSON: $f"; exit 1; }
    fi
    echo "    $f ok"
  done
)

echo "==> server smoke test (ephemeral port, PREDICT/EXECUTE/METRICS over TCP)"
# The example starts a real PlanServer, drives it through PpcClient and
# shuts it down gracefully; a non-zero exit or a hang fails the sweep.
timeout 120 ./build/examples/mixed_workload_server >/dev/null
echo "    server round-trips + clean shutdown ok"

if [ "$SKIP_SAN" = 1 ]; then
  echo "==> sanitizer passes skipped"
  exit 0
fi

# Sanitizer builds compile only the library + tests (benches and examples
# would double the build for no extra coverage).
echo "==> AddressSanitizer build + full test suite"
cmake -B build-asan -S . -DPPC_SANITIZE=address \
  -DPPC_BUILD_BENCHMARKS=OFF -DPPC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$JOBS"
(cd build-asan && ctest --output-on-failure -LE chaos -j "$JOBS")
# The AVX2 kernels and the forced-scalar fallback both run under ASan:
# once in the full suite above, once with the dispatch pinned to scalar.
(cd build-asan && PPC_DISABLE_AVX2=1 \
  ctest --output-on-failure -LE chaos -R 'Simd|Transform|Zorder' -j "$JOBS")

echo "==> ThreadSanitizer build + concurrency, metrics and server tests"
cmake -B build-tsan -S . -DPPC_SANITIZE=thread \
  -DPPC_BUILD_BENCHMARKS=OFF -DPPC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "$JOBS"
(cd build-tsan && \
  ctest --output-on-failure -LE chaos \
    -R 'Concurrent|MetricsRegistry|FrameworkMetrics|Server|Router|HashRing|ClientReconnect|CircuitBreaker|ClusterFailover|Simd|Retune|Generation|DriftRecovery|Scenario|WorkloadZoo' \
    -j "$JOBS")

# Chaos stage: randomized mixed traffic against a live server while a
# saboteur thread arms and disarms failpoints (tests/test_server.cc,
# *Chaos*). Runs serially — the chaos test owns the process-global
# failpoint registry. PPC_CHAOS_SECONDS / PPC_CHAOS_SEED tune the run.
echo "==> chaos stage (fault injection under ASan + TSan, label 'chaos')"
(cd build-asan && ctest --output-on-failure -L chaos)
(cd build-tsan && ctest --output-on-failure -L chaos)

echo "==> all checks passed"
